"""Wall-clock throughput mode: ``python -m repro.bench perf``.

Everything in :mod:`repro.bench.core` is measured in **virtual time** and is
a pure function of the code, which is what lets ``BENCH_*.json`` documents be
committed and compared byte-for-byte.  This module is the deliberate
opposite: it measures how fast the simulator core itself executes on the
host — events per wall-clock second through the scheduler, packets per
second through the backplane — so results are host-dependent by design.

To keep the two regimes from ever being confused, perf results go to a
separate ``PERF_<label>.json`` document (``"kind": "perf"``, its own schema)
that records the host fingerprint and is **never** fed to the virtual-time
regression gate in :mod:`repro.bench.compare`.

The suite has two families:

* **engine** — microbenchmarks that hammer one scheduler path in isolation:
  the immediate resume path (event ring), the time-ordered heap path
  (timeout wheel), queue handoff and resource contention;
* **system** — end-to-end VMMC message streams (the DU ping and the 15-to-1
  fan-in) run without telemetry, exercising the NIC, backplane and
  notification fast paths together;
* **scaling** — the large-mesh shard model (:mod:`repro.shard`) at a fixed
  256-node spec across worker counts, so one document captures the
  parallel-simulation speedup curve of the host it ran on.

Each benchmark is measured ``repeats`` times and summarized in the
Kalibera & Jones repeated-measurement style: the document stores every
per-run throughput sample plus the median (the headline
``events_per_sec``), mean, min/max and a bootstrap 95% confidence
interval of the median, instead of the old schema-1 best-of-N single
number.  The bootstrap resampling is deterministically seeded, so
re-summarizing the same samples always yields the same interval.
"""

from __future__ import annotations

import functools
import json
import platform
import random
import statistics
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..sim import Queue, Resource, Signal, Simulator, Timeout

__all__ = [
    "PERF_SCHEMA_VERSION",
    "PerfResult",
    "PerfSpec",
    "PERF_REGISTRY",
    "select_perf",
    "run_perf",
    "write_perf",
    "load_perf",
    "render_perf",
    "render_perf_comparison",
    "bootstrap_ci",
]

PERF_SCHEMA_VERSION = 2

#: Schemas ``load_perf`` accepts: 1 (best-of-N) is readable as a baseline
#: for comparisons; new documents are always written at the current schema.
PERF_READABLE_SCHEMAS = (1, 2)


@dataclass
class PerfResult:
    """One timed invocation of a perf workload."""

    #: Wall-clock seconds spent inside ``sim.run()``.
    elapsed_s: float
    #: Scheduler dispatches executed during the run.
    events: int
    #: Packets delivered by the backplane (system family only).
    packets: int = 0
    #: Logical operations the workload performed (sends, hops, items...).
    ops: int = 0
    #: Virtual time at the end of the run (sanity cross-check).
    sim_time_us: float = 0.0

    @property
    def events_per_sec(self) -> float:
        return self.events / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def packets_per_sec(self) -> float:
        return self.packets / self.elapsed_s if self.elapsed_s > 0 else 0.0


@dataclass(frozen=True)
class PerfSpec:
    """One wall-clock benchmark: a runner mapping a scale to a result."""

    name: str
    runner: Callable[[int], PerfResult]
    #: Operation count for a full run.
    scale: int
    #: Operation count under ``--quick`` (CI-sized).
    quick_scale: int
    family: str = "engine"
    description: str = ""


#: name -> spec, in registration order.
PERF_REGISTRY: Dict[str, PerfSpec] = {}


def _register(spec: PerfSpec) -> PerfSpec:
    if spec.name in PERF_REGISTRY:
        raise ValueError(f"duplicate perf benchmark {spec.name!r}")
    PERF_REGISTRY[spec.name] = spec
    return spec


def select_perf(
    names: Optional[Sequence[str]] = None, quick: bool = False
) -> List[PerfSpec]:
    if names:
        unknown = [n for n in names if n not in PERF_REGISTRY]
        if unknown:
            raise ValueError(
                f"unknown perf benchmarks {unknown}; "
                f"choose from {sorted(PERF_REGISTRY)}"
            )
        return [PERF_REGISTRY[n] for n in names]
    return list(PERF_REGISTRY.values())


def _timed_run(sim: Simulator, ops: int, packets_of=None) -> PerfResult:
    """Time ``sim.run()`` and collect the scheduler's dispatch count."""
    start_events = getattr(sim, "events_processed", 0)
    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    return PerfResult(
        elapsed_s=elapsed,
        events=getattr(sim, "events_processed", 0) - start_events,
        packets=packets_of() if packets_of is not None else 0,
        ops=ops,
        sim_time_us=sim.now,
    )


# -- engine family -------------------------------------------------------


def _engine_ring(scale: int) -> PerfResult:
    """A token circulating a 64-process signal ring: pure resume traffic.

    Every hop is one ``Signal.fire`` plus one immediate resume — the path
    that the immediate queue accelerates.
    """
    sim = Simulator()
    nprocs = 64
    signals = [Signal(sim, f"ring{i}") for i in range(nprocs)]

    def station(i: int):
        while True:
            count = yield from signals[i].wait()
            if count >= scale:
                return
            signals[(i + 1) % nprocs].fire(count + 1)

    for i in range(nprocs):
        sim.spawn(station(i), f"station{i}")

    def starter():
        yield Timeout(0.0)
        signals[0].fire(0)

    sim.spawn(starter(), "starter")
    return _timed_run(sim, ops=scale)


def _engine_timeouts(scale: int) -> PerfResult:
    """512 processes sleeping on staggered delays: pure heap traffic."""
    sim = Simulator()
    nprocs = 512
    per = max(1, scale // nprocs)

    def sleeper(i: int):
        delay = 0.5 + (i % 13) * 0.37
        for _ in range(per):
            yield Timeout(delay)

    for i in range(nprocs):
        sim.spawn(sleeper(i), f"sleeper{i}")
    return _timed_run(sim, ops=nprocs * per)


def _queue_handoff(scale: int) -> PerfResult:
    """Producer/consumer pairs over :class:`Queue`.

    The producer runs in bursts so the consumer alternates between the
    item-ready fast path and the blocking path.
    """
    sim = Simulator()
    npairs = 8
    per = max(1, scale // npairs)

    def producer(q: Queue):
        for i in range(per):
            q.put(i)
            if i % 8 == 0:
                yield Timeout(1.0)

    def consumer(q: Queue):
        for _ in range(per):
            yield from q.get()

    for p in range(npairs):
        q = Queue(sim, f"q{p}")
        sim.spawn(consumer(q), f"consumer{p}")
        sim.spawn(producer(q), f"producer{p}")
    return _timed_run(sim, ops=npairs * per)


def _resource_contention(scale: int) -> PerfResult:
    """Uncontended and contended acquire/release on counted resources."""
    sim = Simulator()
    per = max(1, scale // 33)
    solo = Resource(sim, capacity=1, name="solo")
    shared = Resource(sim, capacity=2, name="shared")

    def fast_path():
        # Alone on its resource: every acquire takes the no-wait path.
        for _ in range(per):
            yield from solo.acquire()
            solo.release()
            yield Timeout(0.25)

    def contender(i: int):
        for _ in range(per):
            yield from shared.acquire()
            try:
                yield Timeout(0.5)
            finally:
                shared.release()

    sim.spawn(fast_path(), "fast")
    for i in range(32):
        sim.spawn(contender(i), f"contender{i}")
    return _timed_run(sim, ops=33 * per)


# -- system family -------------------------------------------------------


def _stream(senders: int, nbytes: int, ops: int) -> PerfResult:
    """``senders`` nodes each stream ``ops`` sends into node 0, no telemetry."""
    from ..node import Machine
    from ..vmmc import VMMCRuntime

    machine = Machine(num_nodes=senders + 1, seed=1998)
    vmmc = VMMCRuntime(machine)
    receiver = vmmc.endpoint(machine.create_process(0))
    payload = (bytes(range(256)) * (-(-nbytes // 256)))[:nbytes]

    def rx():
        buffers = []
        for s in range(senders):
            buffer = yield from receiver.export(nbytes, name=f"perf.{s}")
            buffers.append(buffer)
        for buffer in buffers:
            yield from receiver.wait_bytes(buffer, nbytes * ops)

    def tx(s: int):
        endpoint = vmmc.endpoint(machine.create_process(s + 1))
        imported = yield from endpoint.import_buffer(f"perf.{s}")
        src = endpoint.alloc(nbytes)
        endpoint.poke(src, payload)
        for _ in range(ops):
            yield from endpoint.send(imported, src, nbytes, sync_delivered=True)

    machine.sim.spawn(rx(), "perf.rx")
    for s in range(senders):
        machine.sim.spawn(tx(s), f"perf.tx{s}")
    return _timed_run(
        machine.sim,
        ops=senders * ops,
        packets_of=lambda: machine.backplane.packets_delivered,
    )


def _du_ping(scale: int) -> PerfResult:
    return _stream(senders=1, nbytes=4096, ops=scale)


def _fanin_15(scale: int) -> PerfResult:
    return _stream(senders=15, nbytes=4096, ops=max(1, scale // 15))


# -- scaling family ------------------------------------------------------


def _shard_scaling(scale: int, workers: int) -> PerfResult:
    """The 256-node shard model under ``workers`` processes.

    ``scale`` is the injection window in us of virtual time.  The three
    registered worker counts share one spec, so the per-document speedup
    (``speedup_vs_w1``) isolates the parallel-execution effect: by the
    shard determinism contract every worker count computes the same bytes.
    Deliveries are not recorded — this measures the execution engine, not
    the telemetry path.
    """
    from ..shard import ShardSpec, run_serial, run_sharded

    spec = ShardSpec(
        width=16,
        height=16,
        workload="transpose",
        duration_us=float(scale),
        record_deliveries=False,
    )
    result = run_sharded(spec, workers) if workers > 1 else run_serial(spec)
    return PerfResult(
        elapsed_s=result.wall_s,
        events=result.events,
        packets=result.packets_delivered,
        ops=result.packets_delivered,
        sim_time_us=result.virtual_end_us,
    )


_register(
    PerfSpec(
        "engine_ring", _engine_ring, scale=200_000, quick_scale=30_000,
        description="64-process signal ring (immediate resume path)",
    )
)
_register(
    PerfSpec(
        "engine_timeouts", _engine_timeouts, scale=200_000, quick_scale=40_000,
        description="512 staggered sleepers (heap path)",
    )
)
_register(
    PerfSpec(
        "queue_handoff", _queue_handoff, scale=160_000, quick_scale=32_000,
        description="producer/consumer bursts over Queue",
    )
)
_register(
    PerfSpec(
        "resource_contention", _resource_contention,
        scale=100_000, quick_scale=20_000,
        description="uncontended + 32-way contended Resource acquire",
    )
)
_register(
    PerfSpec(
        "du_ping", _du_ping, scale=2000, quick_scale=200, family="system",
        description="one-page DU sends, 1 sender (end-to-end core path)",
    )
)
_register(
    PerfSpec(
        "fanin_15", _fanin_15, scale=3000, quick_scale=300, family="system",
        description="one-page DU sends, 15-to-1 fan-in (contention)",
    )
)
for _workers in (1, 2, 4):
    _register(
        PerfSpec(
            f"scaling_256_w{_workers}",
            functools.partial(_shard_scaling, workers=_workers),
            scale=300, quick_scale=60, family="scaling",
            description=(
                f"16x16 shard model, transpose traffic, {_workers} worker"
                f"{'s' if _workers > 1 else ''} (scale = duration us)"
            ),
        )
    )


# -- harness -------------------------------------------------------------


def bootstrap_ci(
    samples: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 19980513,
) -> Tuple[float, float]:
    """Percentile-bootstrap confidence interval of the median.

    Deterministic: the resampling RNG is seeded from ``seed`` only, so the
    same samples always produce the same interval (re-rendering a stored
    document never drifts).  With a single sample the interval collapses
    to a point.
    """
    if not samples:
        raise ValueError("no samples")
    if len(samples) == 1:
        return samples[0], samples[0]
    rng = random.Random(seed)
    n = len(samples)
    medians = sorted(
        statistics.median(rng.choices(samples, k=n)) for _ in range(resamples)
    )
    alpha = (1.0 - confidence) / 2.0
    lo_index = min(resamples - 1, max(0, int(alpha * resamples)))
    hi_index = min(resamples - 1, max(0, int((1.0 - alpha) * resamples) - 1))
    return medians[lo_index], medians[hi_index]


def _summarize(spec: PerfSpec, results: List[PerfResult]) -> Dict:
    """One benchmark's schema-2 entry: representative run + sample stats.

    The headline ``events_per_sec`` is the **median** across repeats (the
    schema-1 field name is kept so comparisons work across schemas); the
    run whose throughput is closest to the median supplies the raw
    events/elapsed/packets fields.
    """
    rates = [result.events_per_sec for result in results]
    median = statistics.median(rates)
    representative = min(results, key=lambda r: abs(r.events_per_sec - median))
    ci_lo, ci_hi = bootstrap_ci(rates)
    entry: Dict = {
        "family": spec.family,
        "ops": representative.ops,
        "events": representative.events,
        "elapsed_s": representative.elapsed_s,
        "events_per_sec": median,
        "sim_time_us": representative.sim_time_us,
        "stats": {
            "repeats": len(rates),
            "samples_events_per_sec": rates,
            "mean": statistics.fmean(rates),
            "min": min(rates),
            "max": max(rates),
            "ci95_lo": ci_lo,
            "ci95_hi": ci_hi,
        },
    }
    if spec.family in ("system", "scaling"):
        entry["packets"] = representative.packets
        entry["packets_per_sec"] = representative.packets_per_sec
    return entry


def run_perf(
    label: str,
    quick: bool = False,
    repeats: int = 3,
    names: Optional[Sequence[str]] = None,
    log: Optional[Callable[[str], None]] = None,
) -> Dict:
    """Run the perf suite and build the ``PERF_*`` document."""
    from .. import __version__

    specs = select_perf(names, quick=quick)
    benchmarks: Dict[str, Dict] = {}
    for spec in specs:
        scale = spec.quick_scale if quick else spec.scale
        results = [spec.runner(scale) for _ in range(max(1, repeats))]
        entry = _summarize(spec, results)
        benchmarks[spec.name] = entry
        if log is not None:
            stats = entry["stats"]
            log(
                f"{spec.name}: {entry['events_per_sec']:,.0f} events/s "
                f"median of {stats['repeats']} "
                f"(95% CI [{stats['ci95_lo']:,.0f}, {stats['ci95_hi']:,.0f}])"
            )
    # The scaling family's headline: parallel speedup over the 1-worker
    # run of the same spec, from the medians.
    for name, entry in benchmarks.items():
        if entry["family"] != "scaling" or name.endswith("_w1"):
            continue
        base = benchmarks.get(name.rsplit("_w", 1)[0] + "_w1")
        if base is not None and base["events_per_sec"] > 0:
            entry["speedup_vs_w1"] = (
                entry["events_per_sec"] / base["events_per_sec"]
            )
    return {
        "schema": PERF_SCHEMA_VERSION,
        "kind": "perf",
        "label": label,
        "quick": quick,
        "repeats": repeats,
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
        },
        "meta": {"version": __version__},
        "benchmarks": benchmarks,
    }


def write_perf(doc: Dict, path: str) -> str:
    from ..telemetry.export import ensure_parent_dir

    with open(ensure_parent_dir(path), "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_perf(path: str) -> Dict:
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("kind") != "perf" or doc.get("schema") not in PERF_READABLE_SCHEMAS:
        raise ValueError(
            f"{path}: not a readable perf document (kind={doc.get('kind')!r}, "
            f"schema={doc.get('schema')!r}, readable={PERF_READABLE_SCHEMAS})"
        )
    return doc


def render_perf(doc: Dict) -> str:
    """ASCII table of one perf document's throughput numbers."""
    from ..study.report import format_table

    rows = []
    for name, entry in doc["benchmarks"].items():
        stats = entry.get("stats")
        if stats is not None:
            ci = f"[{stats['ci95_lo']:,.0f}, {stats['ci95_hi']:,.0f}]"
        else:  # schema-1 document: a single best-of-N number, no interval
            ci = "-"
        if entry["family"] == "scaling":
            extra = (
                f"{entry['speedup_vs_w1']:.2f}x vs w1"
                if "speedup_vs_w1" in entry else "(baseline)"
            )
        elif entry["family"] == "system":
            extra = f"{entry.get('packets_per_sec', 0.0):,.0f} pkt/s"
        else:
            extra = "-"
        rows.append(
            [
                name,
                entry["family"],
                entry["events"],
                f"{entry['elapsed_s']:.3f}",
                f"{entry['events_per_sec']:,.0f}",
                ci,
                extra,
            ]
        )
    return format_table(
        f"Perf (wall-clock): {doc['label']} "
        f"[{doc['host']['implementation']} {doc['host']['python']}]",
        [
            "benchmark", "family", "events", "seconds", "events/s",
            "95% CI", "notes",
        ],
        rows,
    )


def render_perf_comparison(new: Dict, baseline: Dict) -> str:
    """Before/after table: events/sec speedup of ``new`` over ``baseline``."""
    from ..study.report import format_table

    rows = []
    for name, entry in new["benchmarks"].items():
        base = baseline["benchmarks"].get(name)
        if base is None:
            continue
        old_eps = base["events_per_sec"]
        new_eps = entry["events_per_sec"]
        rows.append(
            [
                name,
                f"{old_eps:,.0f}",
                f"{new_eps:,.0f}",
                f"{new_eps / old_eps:.2f}x" if old_eps > 0 else "-",
            ]
        )
    return format_table(
        f"Perf speedup: {new['label']} vs {baseline['label']}",
        ["benchmark", "base events/s", "new events/s", "speedup"],
        rows,
    )
