"""The benchmark harness: run the curated set, emit ``BENCH_<label>.json``.

Every benchmark is a :class:`BenchSpec` whose runner maps a seed to a
:class:`BenchRun` — one or more **virtual-time** samples plus an optional
critical-path attribution vector.  The harness runs each benchmark once
per seed, pools the samples (paired across files by position, so two runs
with the same seed list compare sample-for-sample), and serializes a
deterministic JSON document: no wall-clock or host fields, so a committed
baseline reproduces byte-for-byte on any machine.
"""

from __future__ import annotations

import json
import statistics
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

__all__ = [
    "SCHEMA_VERSION",
    "BenchRun",
    "BenchSpec",
    "REGISTRY",
    "register",
    "select",
    "make_entry",
    "run_benchmarks",
    "write_bench",
    "load_bench",
    "render_summary",
]

SCHEMA_VERSION = 1


@dataclass
class BenchRun:
    """The outcome of one benchmark invocation at one seed."""

    #: Virtual-time samples (one per operation; at least one).
    samples: List[float]
    #: Summed critical-path attribution over the run's operations (us per
    #: component; see :data:`repro.telemetry.critpath.COMPONENTS`).
    attribution: Optional[Dict[str, float]] = None
    #: Number of operations the attribution sums over.
    ops: int = 0


@dataclass(frozen=True)
class BenchSpec:
    """One entry in the curated benchmark set."""

    name: str
    unit: str
    higher_is_better: bool
    runner: Callable[[int], BenchRun]
    #: Included in the --quick subset (CI-sized).
    quick: bool = True
    description: str = ""
    #: Which benchmark suite the spec belongs to.  The default selection
    #: runs only the ``"seed"`` suite, so the committed ``BENCH_seed.json``
    #: baseline stays byte-identical as new suites (e.g. ``"serve"``) are
    #: added; select others with ``--suite``.
    suite: str = "seed"


#: name -> spec, in registration order (dicts preserve it).
REGISTRY: Dict[str, BenchSpec] = {}


def register(spec: BenchSpec) -> BenchSpec:
    if spec.name in REGISTRY:
        raise ValueError(f"duplicate benchmark {spec.name!r}")
    REGISTRY[spec.name] = spec
    return spec


def select(
    names: Optional[Sequence[str]] = None,
    quick: bool = False,
    suite: str = "seed",
) -> List[BenchSpec]:
    """The benchmarks to run, validating any explicit name list.

    An explicit ``names`` list overrides the suite filter; otherwise only
    specs of ``suite`` are selected.
    """
    from . import workloads  # noqa: F401  (populates REGISTRY on import)

    if names:
        unknown = [n for n in names if n not in REGISTRY]
        if unknown:
            raise ValueError(
                f"unknown benchmarks {unknown}; choose from {sorted(REGISTRY)}"
            )
        return [REGISTRY[n] for n in names]
    specs = [s for s in REGISTRY.values() if s.suite == suite]
    if not specs:
        suites = sorted({s.suite for s in REGISTRY.values()})
        raise ValueError(f"unknown suite {suite!r}; choose from {suites}")
    if quick:
        specs = [s for s in specs if s.quick]
    return specs


def _percentile(samples: List[float], p: float) -> float:
    ordered = sorted(samples)
    rank = max(1, -(-int(p) * len(ordered) // 100))
    return ordered[rank - 1]


def make_entry(
    unit: str,
    higher_is_better: bool,
    samples: List[float],
    attribution: Optional[Dict[str, float]] = None,
    ops: int = 0,
) -> Dict:
    """One ``benchmarks`` entry of the ``BENCH_*`` schema.

    Shared with :mod:`repro.fleet`, whose ``RunRecord`` documents embed
    the same entry shape — which is what lets the explorer feed stored
    run records straight into :func:`repro.bench.compare.compare_docs`.
    """
    if not samples:
        raise ValueError("a bench entry needs at least one sample")
    entry: Dict = {
        "unit": unit,
        "higher_is_better": higher_is_better,
        "samples": samples,
        "median": statistics.median(samples),
        "mean": statistics.fmean(samples),
        "min": min(samples),
        "max": max(samples),
        "p95": _percentile(samples, 95),
    }
    if ops and attribution is not None:
        total = sum(attribution.values())
        entry["ops"] = ops
        entry["attribution"] = {
            key: value / ops for key, value in attribution.items()
        }
        entry["attribution_share"] = {
            key: (value / total if total else 0.0)
            for key, value in attribution.items()
        }
    return entry


def run_benchmarks(
    label: str,
    quick: bool = False,
    seeds: Sequence[int] = (1998, 1999, 2000),
    names: Optional[Sequence[str]] = None,
    log: Optional[Callable[[str], None]] = None,
    suite: str = "seed",
) -> Dict:
    """Run the selected benchmarks and build the ``BENCH_*`` document.

    The document schema is suite-independent (no suite field), so the
    committed ``BENCH_seed.json`` baseline is unaffected by new suites.
    """
    from .. import __version__
    from ..hardware import DEFAULT_PARAMS

    specs = select(names, quick=quick, suite=suite)
    benchmarks: Dict[str, Dict] = {}
    for spec in specs:
        samples: List[float] = []
        attribution: Dict[str, float] = {}
        ops = 0
        for seed in seeds:
            run = spec.runner(seed)
            if not run.samples:
                raise RuntimeError(f"benchmark {spec.name} produced no samples")
            samples.extend(run.samples)
            if run.attribution is not None:
                ops += run.ops
                for key, value in run.attribution.items():
                    attribution[key] = attribution.get(key, 0.0) + value
        entry = make_entry(
            spec.unit,
            spec.higher_is_better,
            samples,
            attribution=attribution,
            ops=ops,
        )
        benchmarks[spec.name] = entry
        if log is not None:
            log(
                f"{spec.name}: n={len(samples)} median={entry['median']:.3f} "
                f"{spec.unit}"
            )
    return {
        "schema": SCHEMA_VERSION,
        "label": label,
        "quick": quick,
        "seeds": list(seeds),
        "meta": {
            "version": __version__,
            "params": DEFAULT_PARAMS.describe(),
        },
        "benchmarks": benchmarks,
    }


def write_bench(doc: Dict, path: str) -> str:
    """Serialize a bench document (sorted keys, stable floats)."""
    from ..telemetry.export import ensure_parent_dir

    with open(ensure_parent_dir(path), "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_bench(path: str) -> Dict:
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    schema = doc.get("schema")
    if schema != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported bench schema {schema!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    return doc


def render_summary(doc: Dict) -> str:
    """ASCII table of one bench document's headline numbers."""
    from ..study.report import format_table

    rows = []
    for name, entry in doc["benchmarks"].items():
        rows.append(
            [
                name,
                entry["unit"],
                len(entry["samples"]),
                entry["median"],
                entry["mean"],
                entry["p95"],
            ]
        )
    return format_table(
        f"Benchmarks: {doc['label']} (seeds {doc['seeds']})",
        ["benchmark", "unit", "n", "median", "mean", "p95"],
        rows,
    )
