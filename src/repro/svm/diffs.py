"""Twins and diffs — the multiple-writer machinery of HLRC.

When a node first writes a page in an interval, HLRC copies the page (the
**twin**).  At release time it compares the twin against the current page
to produce a **diff**: the list of changed byte runs.  The diff travels to
the page's home, which applies it; concurrent writers of the same page
(false sharing) merge at the home because their diffs touch different
words.  AURC eliminates all of this — which is precisely the overhead gap
Figure 4 measures.

Diffs are word-granular (4-byte units), matching the hardware word size.
"""

from __future__ import annotations

import struct
from typing import List, Tuple

__all__ = [
    "compute_diff",
    "apply_diff",
    "encode_diff",
    "decode_diff",
    "diff_wire_bytes",
    "DIFF_WORD",
]

DIFF_WORD = 4
_RUN = struct.Struct("<HH")  # offset, length (both in bytes, page-local)

#: A diff: list of (byte offset, changed bytes) runs.
Diff = List[Tuple[int, bytes]]


def compute_diff(twin: bytes, current: bytes) -> Diff:
    """Word-granular runs where ``current`` differs from ``twin``."""
    if len(twin) != len(current):
        raise ValueError("twin and page must be the same size")
    if len(twin) % DIFF_WORD:
        raise ValueError("page size must be a multiple of the diff word")
    runs: Diff = []
    run_start = -1
    for off in range(0, len(twin), DIFF_WORD):
        same = twin[off : off + DIFF_WORD] == current[off : off + DIFF_WORD]
        if not same and run_start < 0:
            run_start = off
        elif same and run_start >= 0:
            runs.append((run_start, current[run_start:off]))
            run_start = -1
    if run_start >= 0:
        runs.append((run_start, current[run_start:]))
    return runs


def apply_diff(page: bytearray, diff: Diff) -> None:
    """Apply changed runs onto ``page`` in place."""
    for offset, data in diff:
        if offset + len(data) > len(page):
            raise ValueError("diff run outside the page")
        page[offset : offset + len(data)] = data


def encode_diff(diff: Diff) -> bytes:
    """Wire encoding: (u16 offset, u16 length, bytes) per run."""
    parts = []
    for offset, data in diff:
        parts.append(_RUN.pack(offset, len(data)))
        parts.append(data)
    return b"".join(parts)


def decode_diff(payload: bytes) -> Diff:
    diff: Diff = []
    pos = 0
    while pos < len(payload):
        offset, length = _RUN.unpack_from(payload, pos)
        pos += _RUN.size
        diff.append((offset, payload[pos : pos + length]))
        pos += length
    return diff


def diff_wire_bytes(diff: Diff) -> int:
    return sum(_RUN.size + len(data) for _offset, data in diff)
