"""Shared virtual memory: HLRC, HLRC-AU and AURC protocols."""

from typing import Dict, Type

from .aurc import AURCNode, AURCProtocol
from .board import IntervalRecord, NoticeBoard
from .diffs import apply_diff, compute_diff, decode_diff, diff_wire_bytes, encode_diff
from .eager import EagerNode, EagerProtocol
from .fabric import SVMFabric, SVMLink
from .hlrc import HLRCNode, HLRCProtocol
from .hlrc_au import HLRCAUNode, HLRCAUProtocol
from .protocol import PageState, SharedRegion, SVMNode, SVMProtocol
from .sharedmem import SharedArray

__all__ = [
    "SVMProtocol",
    "SVMNode",
    "SharedRegion",
    "PageState",
    "HLRCProtocol",
    "HLRCAUProtocol",
    "AURCProtocol",
    "HLRCNode",
    "HLRCAUNode",
    "AURCNode",
    "EagerProtocol",
    "EagerNode",
    "SharedArray",
    "NoticeBoard",
    "IntervalRecord",
    "SVMFabric",
    "SVMLink",
    "compute_diff",
    "apply_diff",
    "encode_diff",
    "decode_diff",
    "diff_wire_bytes",
    "PROTOCOLS",
    "make_protocol",
]

#: Protocol name -> class, for experiment configuration.
PROTOCOLS: Dict[str, Type[SVMProtocol]] = {
    "hlrc": HLRCProtocol,
    "hlrc-au": HLRCAUProtocol,
    "aurc": AURCProtocol,
    "eager": EagerProtocol,
}


def make_protocol(name: str, runtime, nprocs: int, **kwargs) -> SVMProtocol:
    """Instantiate an SVM protocol by name ('hlrc', 'hlrc-au', 'aurc')."""
    try:
        cls = PROTOCOLS[name]
    except KeyError:
        raise ValueError(
            f"unknown SVM protocol {name!r}; choose from {sorted(PROTOCOLS)}"
        ) from None
    return cls(runtime, nprocs, **kwargs)
