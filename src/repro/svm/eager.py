"""An eager single-writer protocol: the pre-LRC baseline.

The paper's SVM lineage starts from IVY-style sequential consistency
(reference [33]) and the eager AU-based shared memories it cites (PLUS
[8], Merlin [36], SESAME [45]).  This protocol reproduces that design
point on the SHRIMP hardware model:

- every page has **one writer at a time**; a write fault transfers
  ownership through the page's home and invalidates every other copy
  *immediately* (not lazily at synchronization);
- owners write **through** automatic-update bindings, so the home copy is
  always current and ownership transfer never needs a data recall;
- readers fetch from the home and are registered in the page's copyset.

Under write-write false sharing this ping-pongs ownership on every
interleaved write — the pathology that motivated lazy release consistency.
``benchmarks/test_ablations.py`` measures the gap against HLRC/AURC.

Semantics note: like the real eager AU systems, propagation is
write-through rather than invalidate-on-every-store, so the protocol is
correct for data-race-free programs (the suite's applications), not a
cycle-exact sequential-consistency implementation.
"""

from __future__ import annotations

import struct
from typing import Dict, Generator, List, Set

from .aurc import AUBindingMixin
from .protocol import (
    PageState,
    REP_ACK,
    SVMNode,
    SVMProtocol,
    SharedRegion,
    _ACK,
)

__all__ = ["EagerProtocol", "EagerNode"]

# Additional record types (disjoint from the base protocol's).
REQ_OWN = 20
REP_OWN = 21
REQ_INVAL = 22

_OWN_REQ = struct.Struct("<II")    # req_id, gpage
_OWN_HDR = struct.Struct("<III")   # req_id, gpage, copyset size
_INVAL = struct.Struct("<III")     # req_id, gpage, requester


class EagerNode(AUBindingMixin, SVMNode):
    """Single-writer pages with immediate invalidation."""

    # -- write path -------------------------------------------------------

    def _write_fault(self, region: SharedRegion, page_index: int) -> Generator:
        """Acquire exclusive ownership of the page before writing."""
        self.write_faults += 1
        self.stats.count("svm.write_faults")
        yield from self._fault_overhead()
        gpage = region.gpage(page_index)
        yield from self._acquire_ownership(region, page_index, gpage)
        self.dirty.add(gpage)
        self._set_state(region, page_index, PageState.WRITE)

    def _acquire_ownership(
        self, region: SharedRegion, page_index: int, gpage: int
    ) -> Generator:
        home = self.protocol.home_of(gpage)
        yield from self._flush_access()
        self.stats.count("svm.ownership_transfers")
        if home == self.index:
            # The home grants itself ownership locally.
            copyset = self._home_take_ownership(gpage, self.index)
        else:
            req_id = self._new_req()
            yield from self.link.send_request(
                home, REQ_OWN, _OWN_REQ.pack(req_id, gpage)
            )
            _rtype, payload = yield from self._await_reply(home, REP_OWN, req_id)
            _id, _g, count = _OWN_HDR.unpack_from(payload)
            members = list(
                struct.unpack_from(f"<{count}I", payload, _OWN_HDR.size)
            )
            page = payload[_OWN_HDR.size + 4 * count :]
            yield from self.endpoint.copy_in(
                self._local_addr(region, page_index * region.page_size), page
            )
            copyset = members
        # Invalidate every other copy, synchronously.
        acks = []
        for member in copyset:
            if member == self.index:
                continue
            req_id = self._new_req()
            yield from self.link.send_request(
                member, REQ_INVAL, _INVAL.pack(req_id, gpage, self.index)
            )
            acks.append((member, req_id))
        for member, req_id in acks:
            yield from self._await_reply(member, REP_ACK, req_id)
            self.stats.count("svm.invalidations")

    def _home_take_ownership(self, gpage: int, new_owner: int) -> List[int]:
        """Home-side bookkeeping; returns the previous copyset."""
        proto: EagerProtocol = self.protocol  # type: ignore[assignment]
        previous = sorted(proto.copysets.get(gpage, set()))
        proto.owners[gpage] = new_owner
        proto.copysets[gpage] = {new_owner}
        return previous

    # -- stores write through (home always current) ------------------------

    def _store(self, region: SharedRegion, offset: int, chunk: bytes) -> Generator:
        gpage = region.gpage(offset // region.page_size)
        if self.protocol.home_of(gpage) == self.index:
            yield from self._charge_access(len(chunk))
            self._poke_region(region, offset, chunk)
        else:
            yield from self._flush_access()
            yield from self.endpoint.au_write(
                self._local_addr(region, offset), chunk, category="computation"
            )

    # -- releases only need the AU fence (home already current) -------------

    def _flush_dirty(self, dirty: List[int]) -> Generator:
        yield from self._au_fence(dirty)

    # -- read path registers the reader in the copyset ----------------------

    def _fetch_page(self, region: SharedRegion, page_index: int) -> Generator:
        gpage = region.gpage(page_index)
        home = self.protocol.home_of(gpage)
        if home == self.index:
            self.protocol.copysets.setdefault(gpage, set()).add(self.index)
            return
        yield from super()._fetch_page(region, page_index)

    # -- daemon handlers ----------------------------------------------------

    def _handle_request(self, src: int, rtype: int, data: bytes):
        if rtype == REQ_OWN:
            return self._serve_ownership(src, data)
        if rtype == REQ_INVAL:
            return self._serve_invalidate(src, data)
        return super()._handle_request(src, rtype, data)

    def _serve_page(self, src: int, data: bytes) -> Generator:
        """Read fetch: also record the reader in the copyset."""
        from .protocol import _PAGE_REQ

        _req_id, gpage = _PAGE_REQ.unpack(data)
        proto: EagerProtocol = self.protocol  # type: ignore[assignment]
        proto.copysets.setdefault(gpage, set()).add(src)
        yield from super()._serve_page(src, data)

    def _serve_ownership(self, src: int, data: bytes) -> Generator:
        req_id, gpage = _OWN_REQ.unpack(data)
        region = self.protocol.region_of_gpage(gpage)
        page_index = gpage - region.first_gpage
        previous = self._home_take_ownership(gpage, src)
        page = self._page_bytes(region, page_index)
        yield from self.endpoint.node.cpu.busy(2.0, "overhead")
        payload = (
            _OWN_HDR.pack(req_id, gpage, len(previous))
            + struct.pack(f"<{len(previous)}I", *previous)
            + page
        )
        yield from self._send_reply_to(src, REP_OWN, payload)

    def _serve_invalidate(self, src: int, data: bytes) -> Generator:
        req_id, gpage, requester = _INVAL.unpack(data)
        region = self.protocol.region_of_gpage(gpage)
        page_index = gpage - region.first_gpage
        if region.region_id in self._copies:
            self._set_state(region, page_index, PageState.INVALID)
            self.dirty.discard(gpage)
        yield from self.endpoint.node.cpu.busy(1.0, "overhead")
        yield from self.link.send_reply(requester, REP_ACK, _ACK.pack(req_id))


class EagerProtocol(SVMProtocol):
    name = "eager"
    uses_au_bindings = True

    def __init__(self, runtime, nprocs, ring_bytes: int = 32 * 1024,
                 au_combine: bool = False):
        super().__init__(runtime, nprocs, ring_bytes)
        self.au_combine = au_combine
        #: Home-side ownership bookkeeping (touched by home daemons only).
        self.owners: Dict[int, int] = {}
        self.copysets: Dict[int, Set[int]] = {}

    def make_node(self, index, endpoint) -> EagerNode:
        return EagerNode(self, index, endpoint)
