"""HLRC: home-based lazy release consistency over deliberate update only.

The baseline protocol of Figure 4 (paper reference [47]): on a write fault
the node twins the page; at release it computes diffs against the twins and
sends them to each page's home with explicit deliberate-update messages;
the home applies them on its CPU and acknowledges.  Diffing and applying
are the overhead AURC eliminates.
"""

from __future__ import annotations

import struct
from typing import Generator, List, Tuple

from .diffs import compute_diff, diff_wire_bytes, encode_diff
from .protocol import REQ_DIFF, REP_ACK, SVMNode, SVMProtocol, _DIFF_HDR

__all__ = ["HLRCProtocol", "HLRCNode"]

#: CPU cycles per page word for the twin-vs-page comparison loop.
DIFF_CYCLES_PER_WORD = 3.0


class HLRCNode(SVMNode):
    def _on_write_fault(self, region, page_index, gpage) -> Generator:
        """Twin the page (skip pages homed here: their copy is the master,
        so there is never a diff to produce)."""
        if self.protocol.home_of(gpage) == self.index:
            return
        page = self._page_bytes(region, page_index)
        self.twins[gpage] = page
        yield from self.endpoint.node.cpu.busy(
            len(page) / self.params.memcpy_bandwidth, "overhead"
        )
        self.stats.count("svm.twins")

    def _flush_dirty(self, dirty: List[int]) -> Generator:
        """Compute and ship diffs; wait for every home's acknowledgment."""
        outstanding: List[Tuple[int, int]] = []
        for gpage in dirty:
            home = self.protocol.home_of(gpage)
            if home == self.index:
                continue  # writes landed directly in the master copy
            region = self.protocol.region_of_gpage(gpage)
            page_index = gpage - region.first_gpage
            twin = self.twins[gpage]
            current = self._page_bytes(region, page_index)
            yield from self.endpoint.node.cpu.busy(
                self.params.cycles(
                    DIFF_CYCLES_PER_WORD * (region.page_size // 4)
                ),
                "overhead",
            )
            diff = compute_diff(twin, current)
            self.stats.count("svm.diffs_computed")
            self.stats.count("svm.diff_bytes", diff_wire_bytes(diff))
            if not diff:
                continue
            req_id = self._new_req()
            payload = _DIFF_HDR.pack(req_id, gpage, diff_wire_bytes(diff))
            yield from self.link.send_request(
                home, REQ_DIFF, payload + encode_diff(diff)
            )
            outstanding.append((home, req_id))
        # Collect acks so the homes are current before the lock/barrier
        # moves on (release semantics).
        for home, req_id in outstanding:
            yield from self._await_reply(home, REP_ACK, req_id)


class HLRCProtocol(SVMProtocol):
    name = "hlrc"
    uses_au_bindings = False

    def make_node(self, index, endpoint) -> HLRCNode:
        return HLRCNode(self, index, endpoint)
