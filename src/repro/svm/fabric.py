"""The SVM communication fabric: notification-driven request channels.

Each pair of nodes gets two ring channels per direction: a **request** ring
whose receive buffer has notifications enabled (the SVM protocol "relies on
the notification mechanism" — section 4.4 / Table 3), and a **reply** ring
that the requesting application thread polls.  The protocol daemon is the
endpoint's notification handler: a request record arriving with the
interrupt bit set causes a (simulated, cost-charged) interrupt and a
user-level control transfer into the handler, which serves the request and
sends replies — never blocking on a reply itself, which keeps the daemon
deadlock-free.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, Optional, Tuple

from ..msg.channel import RingReceiver, RingSender
from ..vmmc import VMMCEndpoint, VMMCRuntime

__all__ = ["SVMFabric", "SVMLink"]

#: request handler: (src_index, record_type, payload) -> optional generator
RequestHandler = Callable[[int, int, bytes], Optional[Generator]]


class SVMFabric:
    """Machine-wide channel naming for one SVM protocol instance."""

    _tags = 0

    def __init__(self, runtime: VMMCRuntime, nprocs: int, ring_bytes: int = 32 * 1024):
        self.runtime = runtime
        self.nprocs = nprocs
        self.ring_bytes = ring_bytes
        SVMFabric._tags += 1
        self.tag = SVMFabric._tags

    def _name(self, kind: str, dst: int, src: int) -> str:
        return f"svm{self.tag}.{kind}.{dst}.from.{src}"

    def join(
        self, index: int, endpoint: VMMCEndpoint, handler: RequestHandler
    ) -> Generator:
        """Collective: build this node's links and install its daemon."""
        link = SVMLink(self, index, endpoint, handler)
        yield from link._init()
        return link


class SVMLink:
    """One node's request/reply channels to every peer."""

    def __init__(
        self,
        fabric: SVMFabric,
        index: int,
        endpoint: VMMCEndpoint,
        handler: RequestHandler,
    ):
        self.fabric = fabric
        self.index = index
        self.endpoint = endpoint
        self.handler = handler
        self._req_recv: Dict[int, RingReceiver] = {}
        self._rep_recv: Dict[int, RingReceiver] = {}
        self._req_send: Dict[int, RingSender] = {}
        self._rep_send: Dict[int, RingSender] = {}
        #: request-ring buffer id -> source index (notification routing)
        self._buffer_to_src: Dict[int, int] = {}

    def _init(self) -> Generator:
        fabric = self.fabric
        others = [i for i in range(fabric.nprocs) if i != self.index]
        for src in others:
            self._req_recv[src] = yield from RingReceiver.export_only(
                self.endpoint,
                fabric._name("req", self.index, src),
                fabric.ring_bytes,
                enable_notifications=True,
            )
            self._buffer_to_src[self._req_recv[src].buffer.buffer_id] = src
            self._rep_recv[src] = yield from RingReceiver.export_only(
                self.endpoint, fabric._name("rep", self.index, src), fabric.ring_bytes
            )
        for dst in others:
            self._req_send[dst] = yield from RingSender.create(
                self.endpoint, fabric._name("req", dst, self.index)
            )
            self._rep_send[dst] = yield from RingSender.create(
                self.endpoint, fabric._name("rep", dst, self.index)
            )
        for src in others:
            yield from self._req_recv[src].connect()
            yield from self._rep_recv[src].connect()
        self.endpoint.set_notification_handler(self._on_notification)

    # -- the daemon -------------------------------------------------------

    def _on_notification(self, buffer, packet) -> Generator:
        """Notification handler: drain complete requests from the ring."""
        src = self._buffer_to_src.get(buffer.buffer_id)
        if src is None:
            return
        receiver = self._req_recv[src]
        while True:
            record = yield from receiver.try_recv_record()
            if record is None:
                return
            rtype, data = record
            result = self.handler(src, rtype, data)
            if result is not None:
                yield from result

    # -- app/daemon send paths --------------------------------------------

    def send_request(
        self, dst: int, rtype: int, data: bytes, wait_delivered: bool = False
    ) -> Generator:
        """Send a request record (raises a notification at ``dst``)."""
        yield from self._req_send[dst].send_record(
            rtype, data, interrupt=True, wait_delivered=wait_delivered
        )

    def send_fence(self, dst: int) -> Generator:
        """An ordering fence: a no-op record, waited to delivery, with no
        notification (the daemon must not be disturbed by it)."""
        yield from self._req_send[dst].send_record(
            0xFFFE, b"F", interrupt=False, wait_delivered=True
        )

    def send_reply(self, dst: int, rtype: int, data: bytes) -> Generator:
        """Send a reply record (the requester at ``dst`` is polling)."""
        yield from self._rep_send[dst].send_record(rtype, data, interrupt=False)

    def recv_reply(self, src: int) -> Generator:
        """Application-thread poll for the next reply from ``src``."""
        record = yield from self._rep_recv[src].recv_record()
        return record
