"""Write-notice bookkeeping for lazy release consistency.

Every node's execution is divided into **intervals** delimited by releases
(lock releases and barrier arrivals).  An interval's **write notices** name
the shared pages the node dirtied during it.  At an acquire, a node learns
of intervals it has not yet seen and invalidates the named pages; the next
access faults and fetches the current copy from the page's home.

Modeling note (documented in DESIGN.md): notices are published to a
machine-global board rather than shipped inside protocol messages — a
simulation shortcut for the vector-timestamp plumbing of real HLRC/AURC.
The *timing* is preserved: protocol messages still carry payload bytes
sized to the notices they would contain, and invalidations still happen at
the same synchronization points, so fault counts and false-sharing effects
are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

__all__ = ["IntervalRecord", "NoticeBoard", "VectorClock"]

#: A vector clock: how many intervals of each node have been applied.
VectorClock = List[int]


@dataclass(frozen=True)
class IntervalRecord:
    """One closed interval: (node, sequence number, pages dirtied)."""

    node: int
    interval: int
    pages: FrozenSet[int]

    @property
    def notice_bytes(self) -> int:
        """Wire size of the write notices this interval contributes."""
        return 8 + 4 * len(self.pages)


class NoticeBoard:
    """Append-only per-node interval logs, shared machine-wide."""

    def __init__(self, num_nodes: int):
        self.num_nodes = num_nodes
        self._logs: List[List[IntervalRecord]] = [[] for _ in range(num_nodes)]

    def publish(self, node: int, pages: Iterable[int]) -> IntervalRecord:
        """Close an interval for ``node``; returns its record."""
        log = self._logs[node]
        record = IntervalRecord(node, len(log) + 1, frozenset(pages))
        log.append(record)
        return record

    def latest(self, node: int) -> int:
        return len(self._logs[node])

    def current_clock(self) -> VectorClock:
        return [len(log) for log in self._logs]

    def records_since(self, clock: VectorClock) -> List[IntervalRecord]:
        """Every interval record not yet covered by ``clock``."""
        out: List[IntervalRecord] = []
        for node, log in enumerate(self._logs):
            out.extend(log[clock[node] :])
        return out

    def pages_to_invalidate(
        self, clock: VectorClock, reader_node: int
    ) -> Tuple[Set[int], VectorClock, int]:
        """Pages ``reader_node`` must invalidate to advance past ``clock``.

        Returns (pages, new clock, notice payload bytes).  The reader's own
        intervals never invalidate its pages (it has its own writes).
        """
        pages: Set[int] = set()
        payload = 0
        new_clock = list(clock)
        for record in self.records_since(clock):
            payload += record.notice_bytes
            new_clock[record.node] = max(new_clock[record.node], record.interval)
            if record.node != reader_node:
                pages.update(record.pages)
        return pages, new_clock, payload
