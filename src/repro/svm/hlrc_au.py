"""HLRC-AU: HLRC with diffs propagated by automatic update.

The middle bar of Figure 4 (left): identical to HLRC — write faults twin
the page, releases compute diffs — but instead of packing the diff into an
explicit deliberate-update message that the home's CPU applies, the
releaser rewrites the changed words through an automatic-update binding;
the updates land on the home page directly, with no home-side apply and no
acknowledgment (an ordering fence suffices).  The paper found this buys
very little over HLRC — the diff *computation*, not its transmission, is
the real cost — and our model reproduces that.
"""

from __future__ import annotations

from typing import Generator, List

from .aurc import AUBindingMixin
from .diffs import compute_diff, diff_wire_bytes
from .hlrc import DIFF_CYCLES_PER_WORD, HLRCNode
from .protocol import SVMProtocol

__all__ = ["HLRCAUProtocol", "HLRCAUNode"]


class HLRCAUNode(AUBindingMixin, HLRCNode):
    def _flush_dirty(self, dirty: List[int]) -> Generator:
        """Diff against twins, then push the changed runs through AU."""
        for gpage in dirty:
            home = self.protocol.home_of(gpage)
            if home == self.index:
                continue
            region = self.protocol.region_of_gpage(gpage)
            page_index = gpage - region.first_gpage
            twin = self.twins[gpage]
            current = self._page_bytes(region, page_index)
            yield from self.endpoint.node.cpu.busy(
                self.params.cycles(DIFF_CYCLES_PER_WORD * (region.page_size // 4)),
                "overhead",
            )
            diff = compute_diff(twin, current)
            self.stats.count("svm.diffs_computed")
            self.stats.count("svm.diff_bytes", diff_wire_bytes(diff))
            page_base = self._local_addr(region, page_index * region.page_size)
            for offset, run in diff:
                # Re-store the changed words through the AU window; the
                # snoop logic carries them to the home page.
                yield from self.endpoint.au_write(
                    page_base + offset, run, category="overhead"
                )
        yield from self._au_fence(dirty)


class HLRCAUProtocol(SVMProtocol):
    name = "hlrc-au"
    uses_au_bindings = True

    def __init__(self, runtime, nprocs, ring_bytes: int = 32 * 1024,
                 au_combine: bool = False):
        super().__init__(runtime, nprocs, ring_bytes)
        self.au_combine = au_combine

    def make_node(self, index, endpoint) -> HLRCAUNode:
        return HLRCAUNode(self, index, endpoint)
