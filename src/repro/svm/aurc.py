"""AURC: Automatic Update Release Consistency.

The protocol of paper reference [25]: shared pages whose home is remote are
bound for **automatic update** to the home's copy, so every write
propagates eagerly as a side-effect of the store — no twins, no diffs, no
home-side apply.  At release time the writer only has to make sure its AU
traffic has reached the homes (an ordering fence), publish write notices,
and move on.  Figure 4 (left) shows this eliminating HLRC's diff overhead,
especially under write-write false sharing.
"""

from __future__ import annotations

from typing import Generator, List, Set

from .protocol import PageState, SVMNode, SVMProtocol, SharedRegion

__all__ = ["AURCProtocol", "AURCNode", "AUBindingMixin"]


class AUBindingMixin:
    """Region setup that binds every non-home page for automatic update."""

    def _setup_region(self, region: SharedRegion) -> Generator:
        tag = self.protocol.fabric.tag
        imports = {}
        base_vaddr, _states = self._copies[region.region_id]
        for page_index in range(region.npages):
            gpage = region.gpage(page_index)
            home = self.protocol.home_of(gpage)
            if home == self.index:
                continue
            if home not in imports:
                imports[home] = yield from self.endpoint.import_buffer(
                    f"svm{tag}.copy.{region.name}.{home}"
                )
            yield from self.endpoint.bind_au(
                imports[home],
                base_vaddr + page_index * region.page_size,
                1,
                remote_page_index=page_index,
                combine=self.protocol.au_combine,
            )

    def _au_fence(self, dirty: List[int]) -> Generator:
        """Drain the outgoing AU path and fence every home written this
        interval, so later page fetches observe the updates."""
        yield from self.endpoint.au_drain()
        homes: Set[int] = set()
        for gpage in dirty:
            home = self.protocol.home_of(gpage)
            if home != self.index:
                homes.add(home)
        for home in sorted(homes):
            yield from self.link.send_fence(home)
            self.stats.count("svm.au_fences")


class AURCNode(AUBindingMixin, SVMNode):
    def _store(self, region: SharedRegion, offset: int, chunk: bytes) -> Generator:
        """Stores to remotely-homed pages go through the write-through AU
        path (bus + snoop + outgoing FIFO); home-page stores are ordinary."""
        gpage = region.gpage(offset // region.page_size)
        if self.protocol.home_of(gpage) == self.index:
            yield from self._charge_access(len(chunk))
            self._poke_region(region, offset, chunk)
        else:
            yield from self._flush_access()
            yield from self.endpoint.au_write(
                self._local_addr(region, offset), chunk, category="computation"
            )

    def _flush_dirty(self, dirty: List[int]) -> Generator:
        yield from self._au_fence(dirty)


class AURCProtocol(SVMProtocol):
    name = "aurc"
    uses_au_bindings = True

    def __init__(self, runtime, nprocs, ring_bytes: int = 32 * 1024,
                 au_combine: bool = False):
        super().__init__(runtime, nprocs, ring_bytes)
        #: Combining for the AU bindings (off by default — the paper found
        #: it buys <1% for AURC's sparse writes, section 4.5.1).
        self.au_combine = au_combine

    def make_node(self, index, endpoint) -> AURCNode:
        return AURCNode(self, index, endpoint)
