"""Shared virtual memory: the common protocol machinery.

Implements page-grained lazy release consistency with home-based pages:

- every shared page has a **home** node (block-cyclic assignment) whose
  copy is kept current — by explicit diffs (HLRC), by AU-propagated diffs
  (HLRC-AU), or by eager automatic updates (AURC);
- writes are tracked per **interval**; releases publish write notices;
  acquires invalidate the pages named by unseen intervals;
- faults fetch the current page from its home over the SVM fabric;
- locks have static managers (``lock_id % P``); barriers are managed by
  node 0.  Both ride the notification-driven request channels.

Concrete protocols subclass :class:`SVMProtocol`/:class:`SVMNode` and
override the write-fault and interval-close hooks.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Set, Tuple

from ..sim import Queue, Signal
from ..vmmc import VMMCEndpoint, VMMCRuntime
from ..node import NodeProcess
from .board import NoticeBoard, VectorClock
from .fabric import SVMFabric, SVMLink

__all__ = ["PageState", "SharedRegion", "SVMProtocol", "SVMNode"]


class PageState(enum.IntEnum):
    INVALID = 0
    READ = 1
    WRITE = 2


# Request record types.
REQ_PAGE = 1
REQ_DIFF = 2
REQ_LOCK_ACQ = 3
REQ_LOCK_REL = 4
REQ_BARRIER = 5
REQ_FENCE = 0xFFFE

# Reply record types.
REP_PAGE = 10
REP_ACK = 11
REP_LOCK_GRANT = 12
REP_BARRIER_GO = 13

_PAGE_REQ = struct.Struct("<II")       # req_id, gpage
_DIFF_HDR = struct.Struct("<III")      # req_id, gpage, diff length
_LOCK_MSG = struct.Struct("<III")      # req_id, lock_id, filler
_BARRIER_MSG = struct.Struct("<III")   # req_id, epoch, notice bytes
_PAGE_REP = struct.Struct("<II")       # req_id, gpage
_ACK = struct.Struct("<I")             # req_id
_GRANT = struct.Struct("<II")          # req_id, lock_id


@dataclass
class SharedRegion:
    """A named shared memory region (collective object)."""

    region_id: int
    name: str
    npages: int
    first_gpage: int
    page_size: int

    @property
    def nbytes(self) -> int:
        return self.npages * self.page_size

    def gpage(self, page_index: int) -> int:
        if not 0 <= page_index < self.npages:
            raise ValueError(f"page {page_index} outside region {self.name!r}")
        return self.first_gpage + page_index


@dataclass
class _LockState:
    held: bool = False
    holder: int = -1
    queue: List[Tuple[int, int]] = field(default_factory=list)  # (node, req_id)


@dataclass
class _BarrierState:
    epoch: int = 0
    arrived: List[Tuple[int, int]] = field(default_factory=list)  # (node, req_id)


class SVMProtocol:
    """Machine-level protocol instance shared by all participating nodes."""

    #: Protocol name, set by subclasses ("hlrc", "hlrc-au", "aurc").
    name = "base"
    #: Does this protocol bind shared pages for automatic update?
    uses_au_bindings = False

    def __init__(
        self,
        runtime: VMMCRuntime,
        nprocs: int,
        ring_bytes: int = 32 * 1024,
    ):
        self.runtime = runtime
        self.nprocs = nprocs
        self.sim = runtime.sim
        self.stats = runtime.stats
        self.board = NoticeBoard(nprocs)
        self.fabric = SVMFabric(runtime, nprocs, ring_bytes)
        self.regions: Dict[str, SharedRegion] = {}
        self._region_announced = Signal(self.sim, "svm.region")
        self._next_gpage = 0
        self._next_region_id = 0
        self.locks: Dict[int, _LockState] = {}
        self.barrier_state = _BarrierState()
        self.nodes: Dict[int, "SVMNode"] = {}

    # -- configuration hooks ---------------------------------------------

    def make_node(self, index: int, endpoint: VMMCEndpoint) -> "SVMNode":
        return SVMNode(self, index, endpoint)

    def home_of(self, gpage: int) -> int:
        """Block-cyclic home assignment."""
        return gpage % self.nprocs

    # -- membership ----------------------------------------------------------

    def join(self, index: int, proc: NodeProcess) -> Generator:
        """Collective: create this node's protocol instance."""
        if not 0 <= index < self.nprocs:
            raise ValueError(f"index {index} outside protocol of {self.nprocs}")
        endpoint = self.runtime.endpoint(proc)
        node = self.make_node(index, endpoint)
        self.nodes[index] = node
        yield from node._init()
        return node

    # -- region bookkeeping ----------------------------------------------

    def define_region(self, name: str, nbytes: int, page_size: int) -> SharedRegion:
        if name in self.regions:
            raise ValueError(f"region {name!r} already defined")
        npages = -(-nbytes // page_size)
        region = SharedRegion(
            self._next_region_id, name, npages, self._next_gpage, page_size
        )
        self._next_region_id += 1
        self._next_gpage += npages
        self.regions[name] = region
        self._region_announced.fire(name)
        return region

    def lookup_region_wait(self, name: str) -> Generator:
        while name not in self.regions:
            yield from self._region_announced.wait()
        return self.regions[name]

    def region_of_gpage(self, gpage: int) -> SharedRegion:
        for region in self.regions.values():
            if region.first_gpage <= gpage < region.first_gpage + region.npages:
                return region
        raise ValueError(f"gpage {gpage} not in any region")

    def global_init(self, name: str, offset: int, data: bytes) -> None:
        """Untimed initialization of a region's contents on every copy.

        Models pre-distributed input data (SPLASH-2 timing starts after
        initialization).  Must be called after every node created the
        region and before any timed access.
        """
        region = self.regions[name]
        if offset + len(data) > region.nbytes:
            raise ValueError("global_init outside region")
        for node in self.nodes.values():
            node._poke_region(region, offset, data)


class SVMNode:
    """One node's view of the shared virtual memory system."""

    #: Per-word CPU cost of shared reads/writes on the fast (hit) path.
    WORD_ACCESS_US = 0.05
    #: Flush accumulated fast-path time once it exceeds this.
    ACCESS_FLUSH_US = 5.0

    def __init__(self, protocol: SVMProtocol, index: int, endpoint: VMMCEndpoint):
        self.protocol = protocol
        self.index = index
        self.endpoint = endpoint
        self.sim = endpoint.sim
        self.stats = endpoint.stats
        self.params = endpoint.params
        self.link: Optional[SVMLink] = None
        self.clock: VectorClock = [0] * protocol.nprocs
        #: region_id -> (base vaddr of local copy, list of page states)
        self._copies: Dict[int, Tuple[int, List[PageState]]] = {}
        self._region_buffers: Dict[int, object] = {}
        self.dirty: Set[int] = set()        # gpages dirtied this interval
        self.twins: Dict[int, bytes] = {}   # HLRC twins
        self._req_ids = 0
        self._pending_us = 0.0
        self._barrier_epoch = 0
        #: Replies the manager role on this node sends to its own app thread
        #: (there are no rings to self).
        self._self_replies: Queue = Queue(self.sim, f"svm.self.{index}")
        # statistics of interest
        self.read_faults = 0
        self.write_faults = 0
        self.pages_fetched = 0

    # -- setup ------------------------------------------------------------

    def _init(self) -> Generator:
        self.link = yield from self.protocol.fabric.join(
            self.index, self.endpoint, self._handle_request
        )

    def create_region(self, name: str, nbytes: int) -> Generator:
        """Collective region creation; every node must call it."""
        if self.index == 0:
            region = self.protocol.define_region(name, nbytes, self.params.page_size)
        else:
            region = yield from self.protocol.lookup_region_wait(name)
        buffer = yield from self.endpoint.export(
            region.nbytes, name=f"svm{self.protocol.fabric.tag}.copy.{name}.{self.index}"
        )
        # Home pages start READ (valid, but writes must fault so the home's
        # own writes generate write notices); the rest start INVALID.
        states = [
            PageState.READ
            if self.protocol.home_of(region.gpage(i)) == self.index
            else PageState.INVALID
            for i in range(region.npages)
        ]
        self._copies[region.region_id] = (buffer.base_vaddr, states)
        self._region_buffers[region.region_id] = buffer
        yield from self._setup_region(region)
        return region

    def _setup_region(self, region: SharedRegion) -> Generator:
        """Protocol hook: e.g. AURC binds non-home pages for AU."""
        return
        yield  # pragma: no cover

    # -- address helpers --------------------------------------------------

    def _local_addr(self, region: SharedRegion, offset: int) -> int:
        base, _states = self._copies[region.region_id]
        return base + offset

    def _state(self, region: SharedRegion, page_index: int) -> PageState:
        return self._copies[region.region_id][1][page_index]

    def _set_state(self, region: SharedRegion, page_index: int, state: PageState):
        self._copies[region.region_id][1][page_index] = state

    def _poke_region(self, region: SharedRegion, offset: int, data: bytes) -> None:
        self.endpoint.poke(self._local_addr(region, offset), data)

    def _page_bytes(self, region: SharedRegion, page_index: int) -> bytes:
        return self.endpoint.peek(
            self._local_addr(region, page_index * region.page_size),
            region.page_size,
        )

    # -- fast-path cost accounting ------------------------------------------

    def _charge_access(self, nbytes: int) -> Generator:
        words = max(1, nbytes // 4)
        self._pending_us += words * self.WORD_ACCESS_US
        if self._pending_us >= self.ACCESS_FLUSH_US:
            yield from self._flush_access()

    def _flush_access(self) -> Generator:
        pending, self._pending_us = self._pending_us, 0.0
        if pending > 0:
            yield from self.endpoint.node.cpu.busy(pending, "computation")

    # -- the access API ------------------------------------------------------

    def read(self, region: SharedRegion, offset: int, nbytes: int) -> Generator:
        """Shared read; faults and fetches as needed.  Returns the bytes."""
        if offset < 0 or offset + nbytes > region.nbytes:
            raise ValueError("shared read out of range")
        page_size = region.page_size
        first = offset // page_size
        last = (offset + max(nbytes, 1) - 1) // page_size
        for page_index in range(first, last + 1):
            if self._state(region, page_index) == PageState.INVALID:
                yield from self._read_fault(region, page_index)
        yield from self._charge_access(nbytes)
        return self.endpoint.peek(self._local_addr(region, offset), nbytes)

    def write(self, region: SharedRegion, offset: int, data: bytes) -> Generator:
        """Shared write; faults, twins and AU propagation per protocol."""
        if offset < 0 or offset + len(data) > region.nbytes:
            raise ValueError("shared write out of range")
        page_size = region.page_size
        pos = 0
        while pos < len(data):
            addr = offset + pos
            page_index = addr // page_size
            in_page = page_size - (addr % page_size)
            chunk = data[pos : pos + min(in_page, len(data) - pos)]
            if self._state(region, page_index) != PageState.WRITE:
                yield from self._write_fault(region, page_index)
            yield from self._store(region, addr, chunk)
            pos += len(chunk)

    def _store(self, region: SharedRegion, offset: int, chunk: bytes) -> Generator:
        """Protocol hook: perform the actual store of one in-page chunk."""
        yield from self._charge_access(len(chunk))
        self._poke_region(region, offset, chunk)

    # -- faults ----------------------------------------------------------------

    def _read_fault(self, region: SharedRegion, page_index: int) -> Generator:
        self.read_faults += 1
        self.stats.count("svm.read_faults")
        self.stats.trace(
            "svm.fault", self.endpoint.node_id,
            f"read fault region={region.name} page={page_index}",
        )
        tel = self.stats.telemetry
        span = None
        if tel is not None:
            span = tel.begin(
                "svm.fault", self.endpoint.node_id, "svm",
                kind="read", region=region.name, page=page_index,
            )
        yield from self._fault_overhead()
        yield from self._fetch_page(region, page_index)
        self._set_state(region, page_index, PageState.READ)
        if tel is not None:
            tel.end(span)

    def _write_fault(self, region: SharedRegion, page_index: int) -> Generator:
        self.write_faults += 1
        self.stats.count("svm.write_faults")
        self.stats.trace(
            "svm.fault", self.endpoint.node_id,
            f"write fault region={region.name} page={page_index}",
        )
        tel = self.stats.telemetry
        span = None
        if tel is not None:
            span = tel.begin(
                "svm.fault", self.endpoint.node_id, "svm",
                kind="write", region=region.name, page=page_index,
            )
        yield from self._fault_overhead()
        if self._state(region, page_index) == PageState.INVALID:
            yield from self._fetch_page(region, page_index)
        gpage = region.gpage(page_index)
        yield from self._on_write_fault(region, page_index, gpage)
        self.dirty.add(gpage)
        self._set_state(region, page_index, PageState.WRITE)
        if tel is not None:
            tel.end(span)

    def _on_write_fault(
        self, region: SharedRegion, page_index: int, gpage: int
    ) -> Generator:
        """Protocol hook: e.g. HLRC creates a twin here."""
        return
        yield  # pragma: no cover

    def _fault_overhead(self) -> Generator:
        # Kernel trap + mprotect bookkeeping.
        yield from self.endpoint.node.cpu.busy(self.params.syscall_us, "overhead")

    def _fetch_page(self, region: SharedRegion, page_index: int) -> Generator:
        """Fetch the current copy from the page's home."""
        gpage = region.gpage(page_index)
        home = self.protocol.home_of(gpage)
        if home == self.index:
            return  # the home copy is always current
        yield from self._flush_access()
        req_id = self._new_req()
        self.stats.count("svm.page_requests")
        yield from self.link.send_request(
            home, REQ_PAGE, _PAGE_REQ.pack(req_id, gpage)
        )
        rtype, payload = yield from self._await_reply(home, REP_PAGE, req_id)
        page_data = payload[_PAGE_REP.size :]
        yield from self.endpoint.copy_in(
            self._local_addr(region, page_index * region.page_size), page_data
        )
        self.pages_fetched += 1
        self.stats.count("svm.pages_fetched")

    def _await_reply(self, src: int, expect_rtype: int, req_id: int) -> Generator:
        if src == self.index:
            rtype, payload = yield from self._self_replies.get()
        else:
            rtype, payload = yield from self.link.recv_reply(src)
        got_id = struct.unpack_from("<I", payload)[0]
        if rtype != expect_rtype or got_id != req_id:
            raise RuntimeError(
                f"SVM reply mismatch: wanted ({expect_rtype},{req_id}), "
                f"got ({rtype},{got_id})"
            )
        return rtype, payload

    def _new_req(self) -> int:
        self._req_ids += 1
        return self._req_ids

    # -- synchronization -----------------------------------------------------

    def acquire(self, lock_id: int) -> Generator:
        """Acquire a global lock; applies pending invalidations."""
        yield from self._flush_access()
        t0 = self.sim.now
        tel = self.stats.telemetry
        span = None
        if tel is not None:
            span = tel.begin(
                "svm.lock_acquire", self.endpoint.node_id, "svm", lock=lock_id
            )
        manager = lock_id % self.protocol.nprocs
        req_id = self._new_req()
        self.stats.count("svm.lock_requests")
        if manager == self.index:
            granted = self._local_lock_try(lock_id, req_id)
            if not granted:
                yield from self._await_grant_via_self(lock_id, req_id)
        else:
            yield from self.link.send_request(
                manager, REQ_LOCK_ACQ, _LOCK_MSG.pack(req_id, lock_id, 0)
            )
            yield from self._await_reply(manager, REP_LOCK_GRANT, req_id)
        self._charge_wait(t0, "lock")
        yield from self._apply_invalidations()
        if tel is not None:
            tel.end(span)

    def release(self, lock_id: int) -> Generator:
        """Release a lock: close the interval, then hand the lock on."""
        yield from self._flush_access()
        t0 = self.sim.now
        tel = self.stats.telemetry
        span = None
        if tel is not None:
            span = tel.begin(
                "svm.lock_release", self.endpoint.node_id, "svm", lock=lock_id
            )
        yield from self._close_interval()
        manager = lock_id % self.protocol.nprocs
        req_id = self._new_req()
        if manager == self.index:
            yield from self._local_unlock(lock_id)
        else:
            yield from self.link.send_request(
                manager, REQ_LOCK_REL, _LOCK_MSG.pack(req_id, lock_id, 0)
            )
        self._charge_wait(t0, "lock")
        if tel is not None:
            tel.end(span)

    def barrier(self) -> Generator:
        """Global barrier: close interval, rendezvous, invalidate."""
        yield from self._flush_access()
        t0 = self.sim.now
        tel = self.stats.telemetry
        span = None
        if tel is not None:
            span = tel.begin("svm.barrier", self.endpoint.node_id, "svm")
        yield from self._close_interval()
        self._barrier_epoch += 1
        manager = 0
        req_id = self._new_req()
        self.stats.count("svm.barriers")
        notice_bytes = 8 * self.protocol.nprocs
        if manager == self.index:
            yield from self._local_barrier_enter(req_id)
        else:
            yield from self.link.send_request(
                manager,
                REQ_BARRIER,
                _BARRIER_MSG.pack(req_id, self._barrier_epoch, notice_bytes),
            )
            yield from self._await_reply(manager, REP_BARRIER_GO, req_id)
        self._charge_wait(t0, "barrier")
        yield from self._apply_invalidations()
        if tel is not None:
            tel.end(span)

    def _charge_wait(self, t0: float, category: str) -> None:
        elapsed = self.sim.now - t0
        if elapsed > 0:
            self.stats.breakdown(self.endpoint.node_id).charge(category, elapsed)

    # -- interval close (release actions) ---------------------------------

    def _close_interval(self) -> Generator:
        """Publish write notices and run the protocol's flush hook."""
        if not self.dirty:
            return
        dirty = sorted(self.dirty)
        yield from self._flush_dirty(dirty)
        self.protocol.board.publish(self.index, dirty)
        self.clock[self.index] = self.protocol.board.latest(self.index)
        # Downgrade to READ so next interval's writes fault again (write
        # tracking is per interval).
        for gpage in dirty:
            region = self.protocol.region_of_gpage(gpage)
            self._set_state(region, gpage - region.first_gpage, PageState.READ)
        self.dirty.clear()
        self.twins.clear()

    def _flush_dirty(self, dirty: List[int]) -> Generator:
        """Protocol hook: propagate this interval's writes toward homes."""
        return
        yield  # pragma: no cover

    def _apply_invalidations(self) -> Generator:
        """Invalidate pages named by intervals we have not seen."""
        board = self.protocol.board
        pages, new_clock, payload = board.pages_to_invalidate(self.clock, self.index)
        self.clock = new_clock
        # Receiving and scanning the write notices costs CPU time.
        if payload:
            yield from self.endpoint.node.cpu.busy(
                payload / self.params.memcpy_bandwidth + 0.5, "overhead"
            )
        for gpage in pages:
            if self.protocol.home_of(gpage) == self.index:
                continue  # home copies stay current
            region = self.protocol.region_of_gpage(gpage)
            page_index = gpage - region.first_gpage
            if region.region_id not in self._copies:
                continue
            if gpage in self.dirty:
                # Still dirty in an open interval (properly synchronized
                # programs only hit this under false sharing across locks);
                # keep write state — our own stores are not yet flushed.
                continue
            self._set_state(region, page_index, PageState.INVALID)
            self.stats.count("svm.invalidations")

    # -- manager-side state (runs in daemon handlers) ------------------------

    def _local_lock_try(self, lock_id: int, req_id: int) -> bool:
        state = self.protocol.locks.setdefault(lock_id, _LockState())
        if not state.held:
            state.held = True
            state.holder = self.index
            return True
        state.queue.append((self.index, req_id))
        return False

    def _await_grant_via_self(self, lock_id: int, req_id: int) -> Generator:
        yield from self._await_reply(self.index, REP_LOCK_GRANT, req_id)

    def _local_unlock(self, lock_id: int) -> Generator:
        state = self.protocol.locks[lock_id]
        if state.queue:
            node, req_id = state.queue.pop(0)
            state.holder = node
            yield from self._send_grant(node, req_id, lock_id)
        else:
            state.held = False
            state.holder = -1

    def _send_reply_to(self, node: int, rtype: int, payload: bytes) -> Generator:
        """Send a reply, looping it locally when the target is this node."""
        if node == self.index:
            yield from self.endpoint.node.cpu.busy(0.5, "overhead")
            self._self_replies.put((rtype, payload))
        else:
            yield from self.link.send_reply(node, rtype, payload)

    def _send_grant(self, node: int, req_id: int, lock_id: int) -> Generator:
        board = self.protocol.board
        waiter = self.protocol.nodes[node]
        _pages, _clock, notice_bytes = board.pages_to_invalidate(waiter.clock, node)
        payload = _GRANT.pack(req_id, lock_id) + bytes(min(notice_bytes, 2048))
        yield from self._send_reply_to(node, REP_LOCK_GRANT, payload)

    def _local_barrier_enter(self, req_id: int) -> Generator:
        state = self.protocol.barrier_state
        state.arrived.append((self.index, req_id))
        if len(state.arrived) >= self.protocol.nprocs:
            yield from self._barrier_release_all()
        yield from self._await_reply(self.index, REP_BARRIER_GO, req_id)

    def _barrier_release_all(self) -> Generator:
        state = self.protocol.barrier_state
        state.epoch += 1
        arrived, state.arrived = state.arrived, []
        notice_bytes = min(2048, 8 * self.protocol.nprocs)
        for node, req_id in arrived:
            payload = _ACK.pack(req_id) + bytes(notice_bytes)
            yield from self._send_reply_to(node, REP_BARRIER_GO, payload)

    # -- daemon request handling -------------------------------------------

    def _handle_request(self, src: int, rtype: int, data: bytes):
        if rtype == REQ_FENCE:
            return None
        if rtype == REQ_PAGE:
            return self._serve_page(src, data)
        if rtype == REQ_DIFF:
            return self._serve_diff(src, data)
        if rtype == REQ_LOCK_ACQ:
            return self._serve_lock_acq(src, data)
        if rtype == REQ_LOCK_REL:
            return self._serve_lock_rel(src, data)
        if rtype == REQ_BARRIER:
            return self._serve_barrier(src, data)
        raise RuntimeError(f"unknown SVM request type {rtype}")

    def _serve_page(self, src: int, data: bytes) -> Generator:
        req_id, gpage = _PAGE_REQ.unpack(data)
        region = self.protocol.region_of_gpage(gpage)
        page_index = gpage - region.first_gpage
        if self.protocol.home_of(gpage) != self.index:
            raise RuntimeError(f"page request for {gpage} at non-home {self.index}")
        page = self._page_bytes(region, page_index)
        yield from self.endpoint.node.cpu.busy(2.0, "overhead")
        yield from self.link.send_reply(
            src, REP_PAGE, _PAGE_REP.pack(req_id, gpage) + page
        )
        self.stats.count("svm.pages_served")

    def _serve_diff(self, src: int, data: bytes) -> Generator:
        from .diffs import decode_diff

        req_id, gpage, _length = _DIFF_HDR.unpack_from(data)
        region = self.protocol.region_of_gpage(gpage)
        page_index = gpage - region.first_gpage
        diff = decode_diff(data[_DIFF_HDR.size :])
        # Charge the apply cost first, then write only the diffed runs with
        # no intervening yield: the home's application thread may be
        # writing other words of this page concurrently (multiple-writer
        # false sharing), and a full-page read-modify-write would lose its
        # updates.
        nbytes = sum(len(run) for _off, run in diff)
        yield from self.endpoint.node.cpu.busy(
            1.0 + nbytes / self.params.memcpy_bandwidth, "overhead"
        )
        page_base = page_index * region.page_size
        for offset, run in diff:
            self._poke_region(region, page_base + offset, run)
        yield from self.link.send_reply(src, REP_ACK, _ACK.pack(req_id))
        self.stats.count("svm.diffs_applied")

    def _serve_lock_acq(self, src: int, data: bytes) -> Generator:
        req_id, lock_id, _f = _LOCK_MSG.unpack(data)
        state = self.protocol.locks.setdefault(lock_id, _LockState())
        if not state.held:
            state.held = True
            state.holder = src
            yield from self._send_grant(src, req_id, lock_id)
        else:
            state.queue.append((src, req_id))

    def _serve_lock_rel(self, src: int, data: bytes) -> Generator:
        _req_id, lock_id, _f = _LOCK_MSG.unpack(data)
        yield from self._local_unlock(lock_id)

    def _serve_barrier(self, src: int, data: bytes) -> Generator:
        req_id, _epoch, _nb = _BARRIER_MSG.unpack(data)
        state = self.protocol.barrier_state
        state.arrived.append((src, req_id))
        if len(state.arrived) >= self.protocol.nprocs:
            yield from self._barrier_release_all()
