"""Typed shared arrays over SVM regions.

The applications program against :class:`SharedArray` — a flat array of
int32 or float64 living in a shared region — instead of raw byte offsets.
All element accesses go through the owning :class:`~repro.svm.SVMNode`, so
page faults, twins, automatic updates and invalidations happen exactly
where the raw protocol dictates.
"""

from __future__ import annotations

import struct
from typing import Generator, List, Sequence

from .protocol import SVMNode, SharedRegion

__all__ = ["SharedArray"]

_FORMATS = {"i4": struct.Struct("<i"), "f8": struct.Struct("<d")}


class SharedArray:
    """A typed view of (part of) a shared region on one node."""

    def __init__(
        self,
        svm: SVMNode,
        region: SharedRegion,
        dtype: str = "i4",
        base_offset: int = 0,
        length: int = 0,
    ):
        if dtype not in _FORMATS:
            raise ValueError(f"unsupported dtype {dtype!r} (use 'i4' or 'f8')")
        self.svm = svm
        self.region = region
        self.dtype = dtype
        self.itemsize = _FORMATS[dtype].size
        self.base_offset = base_offset
        max_items = (region.nbytes - base_offset) // self.itemsize
        self.length = length or max_items
        if self.length > max_items:
            raise ValueError("array does not fit in the region")
        self._struct = _FORMATS[dtype]

    @classmethod
    def create(
        cls,
        svm: SVMNode,
        name: str,
        length: int,
        dtype: str = "i4",
    ) -> Generator:
        """Collective: create a region sized for ``length`` elements."""
        if dtype not in _FORMATS:
            raise ValueError(f"unsupported dtype {dtype!r} (use 'i4' or 'f8')")
        itemsize = _FORMATS[dtype].size
        region = yield from svm.create_region(name, length * itemsize)
        return cls(svm, region, dtype, 0, length)

    def _offset(self, index: int) -> int:
        if not 0 <= index < self.length:
            raise IndexError(f"index {index} out of range [0, {self.length})")
        return self.base_offset + index * self.itemsize

    # -- element access ---------------------------------------------------

    def get(self, index: int) -> Generator:
        raw = yield from self.svm.read(self.region, self._offset(index), self.itemsize)
        return self._struct.unpack(raw)[0]

    def set(self, index: int, value) -> Generator:
        yield from self.svm.write(
            self.region, self._offset(index), self._struct.pack(value)
        )

    # -- range access (bulk, far fewer simulation events) -------------------

    def get_range(self, start: int, count: int) -> Generator:
        if count == 0:
            return []
        end_off = self._offset(start + count - 1) + self.itemsize
        raw = yield from self.svm.read(
            self.region, self._offset(start), end_off - self._offset(start)
        )
        fmt = "<" + ("i" if self.dtype == "i4" else "d") * count
        return list(struct.unpack(fmt, raw))

    def set_range(self, start: int, values: Sequence) -> Generator:
        if not values:
            return
        self._offset(start)
        self._offset(start + len(values) - 1)
        fmt = "<" + ("i" if self.dtype == "i4" else "d") * len(values)
        yield from self.svm.write(
            self.region, self._offset(start), struct.pack(fmt, *values)
        )

    def init_global(self, values: Sequence) -> None:
        """Untimed initialization of the whole array on every node."""
        if len(values) != self.length:
            raise ValueError("init_global needs exactly length values")
        fmt = "<" + ("i" if self.dtype == "i4" else "d") * len(values)
        self.svm.protocol.global_init(
            self.region.name, self.base_offset, struct.pack(fmt, *values)
        )
