"""Version-compatibility shims.

The project supports Python 3.9+, but some optimizations only exist on
newer interpreters.  Hot-path dataclasses (packets, DMA transfer
requests) want ``__slots__`` for smaller instances and faster attribute
access; ``dataclass(slots=True)`` arrived in 3.10, and the manual
``__slots__`` spelling conflicts with defaulted dataclass fields, so on
3.9 the classes simply stay dict-backed — identical semantics, slower.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from functools import partial

__all__ = ["slotted_dataclass"]

if sys.version_info >= (3, 10):
    slotted_dataclass = partial(dataclass, slots=True)
else:  # pragma: no cover - exercised only on 3.9
    slotted_dataclass = dataclass
