"""The Xpress memory bus model.

The key architectural property (paper section 2.1, revisited in sections
4.5.2 and 4.5.3) is that the bus does **not cycle-share** between the CPU
and any other main-memory master: while the NIC's DMA engine holds the bus,
the CPU stalls, and vice versa.  The bus is therefore a single-holder
resource, and the "deliberate-update queueing barely helps" result
(section 4.5.3) falls straight out of this model — queued transfers still
serialize on the bus against the CPU that wanted to run ahead.
"""

from __future__ import annotations

from typing import Generator

from ..sim import Resource, Simulator
from .params import MachineParams

__all__ = ["MemoryBus"]


class MemoryBus:
    """Single-master-at-a-time memory bus with bandwidth accounting."""

    def __init__(self, sim: Simulator, params: MachineParams, name: str = "bus"):
        self.sim = sim
        self.params = params
        self._resource = Resource(sim, capacity=1, name=name)
        self.bytes_transferred = 0
        self.transactions = 0

    @property
    def busy(self) -> bool:
        return self._resource.in_use > 0

    @property
    def queue_length(self) -> int:
        return self._resource.queue_length

    def transfer_time(
        self,
        nbytes: int,
        bandwidth: float = 0.0,
        transactions: int = 1,
        transaction_us: float = 0.0,
    ) -> float:
        """Bus occupancy for ``nbytes`` moved in ``transactions`` bursts.

        ``bandwidth`` limits the transfer rate when the other end is slower
        than the bus (e.g. EISA DMA); 0 means full memory-bus speed.
        ``transaction_us`` overrides the per-burst setup cost (EISA bursts
        cost more to arbitrate than native bus cycles).
        """
        rate = self.params.memory_bus_bandwidth
        if bandwidth:
            rate = min(rate, bandwidth)
        per_transaction = transaction_us or self.params.bus_transaction_us
        return transactions * per_transaction + nbytes / rate

    def transfer(
        self,
        nbytes: int,
        bandwidth: float = 0.0,
        transactions: int = 1,
        transaction_us: float = 0.0,
    ) -> Generator:
        """Hold the bus for the duration of a transfer of ``nbytes``.

        Blocks while another master (CPU store stream or NIC DMA) holds it.
        """
        resource = self._resource
        if not resource.try_acquire():
            yield from resource._acquire_wait()
        try:
            params = self.params
            rate = params.memory_bus_bandwidth
            if bandwidth and bandwidth < rate:
                rate = bandwidth
            yield (
                transactions * (transaction_us or params.bus_transaction_us)
                + nbytes / rate
            )
            self.bytes_transferred += nbytes
            self.transactions += transactions
        finally:
            resource.release()

    def utilization(self, elapsed: float) -> float:
        return self._resource.utilization(elapsed)
