"""Physical memory: a flat byte array divided into page frames.

Every node owns one ``PhysicalMemory``.  All real data handled by the
communication stack — receive buffers, SVM pages, socket streams — lives in
these byte arrays, so transfers move *actual bytes* end to end and the test
suite can check data integrity, not just timing.
"""

from __future__ import annotations

from typing import List, Optional

__all__ = ["PhysicalMemory", "OutOfMemoryError"]


class OutOfMemoryError(MemoryError):
    """No free page frames remain on the node."""


class PhysicalMemory:
    """Byte-addressable memory with a simple page-frame allocator."""

    def __init__(self, size_bytes: int, page_size: int):
        if size_bytes % page_size != 0:
            raise ValueError("memory size must be a whole number of pages")
        self.page_size = page_size
        self.size = size_bytes
        self.num_frames = size_bytes // page_size
        self.data = bytearray(size_bytes)
        self._free_frames: List[int] = list(range(self.num_frames - 1, -1, -1))
        self._allocated = [False] * self.num_frames

    # -- frame allocation -------------------------------------------------

    @property
    def free_frames(self) -> int:
        return len(self._free_frames)

    def alloc_frame(self) -> int:
        """Allocate one page frame; returns the frame number."""
        if not self._free_frames:
            raise OutOfMemoryError(
                f"out of physical memory ({self.num_frames} frames in use)"
            )
        frame = self._free_frames.pop()
        self._allocated[frame] = True
        return frame

    def alloc_frames(self, count: int) -> List[int]:
        if count > len(self._free_frames):
            raise OutOfMemoryError(
                f"requested {count} frames, only {len(self._free_frames)} free"
            )
        return [self.alloc_frame() for _ in range(count)]

    def free_frame(self, frame: int) -> None:
        if not self._allocated[frame]:
            raise ValueError(f"double free of frame {frame}")
        self._allocated[frame] = False
        # Zero on free so stale data never leaks between owners.
        base = frame * self.page_size
        self.data[base : base + self.page_size] = bytes(self.page_size)
        self._free_frames.append(frame)

    def is_allocated(self, frame: int) -> bool:
        return self._allocated[frame]

    # -- byte access --------------------------------------------------------

    def frame_base(self, frame: int) -> int:
        if not 0 <= frame < self.num_frames:
            raise ValueError(f"frame {frame} out of range")
        return frame * self.page_size

    def read(self, addr: int, length: int) -> bytes:
        self._check_range(addr, length)
        return bytes(self.data[addr : addr + length])

    def write(self, addr: int, payload: bytes) -> None:
        self._check_range(addr, len(payload))
        self.data[addr : addr + len(payload)] = payload

    def read_page(self, frame: int) -> bytes:
        base = self.frame_base(frame)
        return bytes(self.data[base : base + self.page_size])

    def write_page(self, frame: int, payload: bytes) -> None:
        if len(payload) != self.page_size:
            raise ValueError("write_page payload must be exactly one page")
        base = self.frame_base(frame)
        self.data[base : base + self.page_size] = payload

    def _check_range(self, addr: int, length: int) -> None:
        if addr < 0 or length < 0 or addr + length > self.size:
            raise ValueError(
                f"physical access [{addr}, {addr + length}) outside memory "
                f"of {self.size} bytes"
            )
