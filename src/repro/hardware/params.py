"""Machine parameters for the simulated SHRIMP platform.

All times are **microseconds**, all sizes **bytes**, all bandwidths
**bytes per microsecond** (numerically equal to MB/s).

Published numbers adopted from the paper:

- 60 MHz Pentium nodes (``cpu_mhz``).
- Intel Paragon backplane: 2-D mesh, oblivious wormhole routing,
  200 Mbytes/s maximum link bandwidth (``link_bandwidth``).
- EISA I/O bus: ~32 Mbytes/s burst DMA (``eisa_bandwidth``) — the NIC's
  deliberate-update engine and incoming DMA engine both live on EISA.
- Outgoing FIFO: 4K-deep, 8-byte-wide chips -> 32 Kbytes (``fifo_capacity``).
- Deliberate-update end-to-end latency 6 us; automatic-update single-word
  latency 3.71 us; user-level DMA send overhead < 2 us.  The per-stage
  constants below are chosen so the simulated microbenchmarks land on those
  totals (validated by ``benchmarks/test_microbenchmarks.py``).

Back-derived numbers (the paper does not publish them directly; they are
tuned so Tables 2 and 4 fall in the reported bands):

- ``syscall_us``: cost of trapping into the kernel for the "system call on
  every send" what-if (Table 2).
- ``interrupt_null_us``: cost of fielding a null-handler interrupt for the
  "interrupt on every message" what-if (Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict

__all__ = ["MachineParams", "DEFAULT_PARAMS"]


@dataclass(frozen=True)
class MachineParams:
    """Every timing/size constant of the simulated platform."""

    # --- node ----------------------------------------------------------
    cpu_mhz: float = 60.0
    page_size: int = 4096
    word_size: int = 4
    memory_bytes: int = 32 * 1024 * 1024
    #: Xpress memory bus sustainable bandwidth (bytes/us).  The bus does
    #: NOT cycle-share between the CPU and any other master (paper S2.1) —
    #: it is modeled as a single-holder resource.
    memory_bus_bandwidth: float = 240.0
    #: Fixed arbitration/turnaround cost per bus transaction.
    bus_transaction_us: float = 0.05
    #: Effective bandwidth of sustained CPU write-through store streams
    #: (bytes/us).  Individual word writes do not burst, so this is well
    #: below both the bus and EISA DMA rates — the reason deliberate
    #: update's DMA wins for bulk transfers even though automatic update
    #: has lower latency (section 4.2).
    write_through_bandwidth: float = 24.0
    #: Sparse write-through stores are *posted*: the CPU pays only the
    #: store and write-buffer cost and continues while the bus transaction
    #: completes behind it.  Runs up to ``posted_write_max`` bytes take this
    #: CPU cost and occupy the bus asynchronously; longer runs fill the
    #: write buffer and throttle to ``write_through_bandwidth``.
    posted_write_us: float = 0.15
    posted_write_max: int = 32

    # --- EISA I/O bus ---------------------------------------------------
    eisa_bandwidth: float = 32.0
    eisa_transaction_us: float = 0.2

    # --- mesh backplane --------------------------------------------------
    mesh_width: int = 4
    mesh_height: int = 4
    link_bandwidth: float = 200.0
    #: Per-router fall-through latency for wormhole routing.
    router_hop_us: float = 0.04
    packet_header_bytes: int = 8
    #: Largest packet payload (one page).
    max_packet_bytes: int = 4096
    #: Incoming NIC FIFO capacity; when full, arriving worms block in the
    #: network (wormhole backpressure up to the sender).
    rx_fifo_bytes: int = 16 * 1024

    # --- NIC timing -------------------------------------------------------
    #: User-level DMA initiation: the two-instruction load/store sequence
    #: plus NIC-side decode ("less than 2 us" in the paper).
    udma_init_us: float = 1.4
    #: Deliberate-update engine start cost per transfer (descriptor fetch,
    #: OPT lookup, DMA arbitration).
    dma_start_us: float = 1.0
    #: Snoop-logic capture cost per outgoing AU packet (memory-bus board ->
    #: EISA board transfer and OPT lookup).
    snoop_capture_us: float = 0.1
    #: Packetize/format-and-send cost per outgoing packet.
    packetize_us: float = 0.1
    #: Incoming engine per-packet occupancy (header decode, IPT lookup).
    rx_packet_us: float = 0.08
    #: Incoming DMA start occupancy per packet (burst setup).
    rx_dma_start_us: float = 0.25
    #: Receive pipeline latency: fixed delay between a packet's DMA and its
    #: effects becoming visible (status update, interrupt).  Pure latency —
    #: it does not occupy the receive engine, which processes the next
    #: packet meanwhile.
    rx_pipeline_us: float = 2.35
    #: Automatic-update combining timer: flush a partially filled packet
    #: this long after the first store it holds.  Long enough for a full
    #: sub-page run to accumulate at write-through speed; senders that
    #: need prompt delivery flush explicitly (a non-consecutive store).
    combine_timeout_us: float = 50.0
    #: Outgoing FIFO capacity and software-flow-control threshold.
    fifo_capacity: int = 32 * 1024
    fifo_threshold_fraction: float = 0.75

    # --- NIC collective firmware (repro.coll) ---------------------------
    #: Firmware state-machine step per collective packet or local arrival
    #: (decode, state lookup/update, completion check) when the NIC runs
    #: the collective protocol itself.
    coll_firmware_us: float = 0.4
    #: Extra firmware cost per operand folded into a partial reduce result
    #: (the switch-combining accumulate of the Ultracomputer lineage).
    coll_combine_us: float = 0.1
    #: Host-backend protocol step per collective packet: the library
    #: observes the arrival and advances its state machine on the CPU.
    #: Charged on top of ``poll_us`` (status-word read) and the
    #: ``udma_init_us`` doorbell per re-injected packet.
    coll_host_op_us: float = 1.5

    # --- software costs ------------------------------------------------
    #: CPU memcpy bandwidth (library-level copies in/out of buffers).
    memcpy_bandwidth: float = 45.0
    #: Cost of one poll of a receive-buffer status word.
    poll_us: float = 0.3

    # --- OS costs ---------------------------------------------------------
    syscall_us: float = 7.5
    interrupt_null_us: float = 9.0
    #: Cost to dispatch a user-level notification (kernel handler decides
    #: where to deliver, then a signal-like upcall).
    notification_dispatch_us: float = 12.0
    #: Page pinning / unpinning cost (export time only).
    pin_page_us: float = 5.0
    #: De-schedule/re-schedule cost for FIFO software flow control.
    deschedule_us: float = 25.0

    # --- derived ----------------------------------------------------------
    @property
    def cycle_us(self) -> float:
        return 1.0 / self.cpu_mhz

    @property
    def fifo_threshold_bytes(self) -> int:
        return int(self.fifo_capacity * self.fifo_threshold_fraction)

    @property
    def words_per_page(self) -> int:
        return self.page_size // self.word_size

    def cycles(self, n: float) -> float:
        """Time in microseconds for ``n`` CPU cycles."""
        return n * self.cycle_us

    def with_overrides(self, **overrides: Any) -> "MachineParams":
        """A copy with the given fields replaced (what-if configurations)."""
        return replace(self, **overrides)

    def describe(self) -> Dict[str, Any]:
        return {
            "cpu_mhz": self.cpu_mhz,
            "mesh": f"{self.mesh_width}x{self.mesh_height}",
            "link_bandwidth_MBps": self.link_bandwidth,
            "eisa_bandwidth_MBps": self.eisa_bandwidth,
            "fifo_capacity": self.fifo_capacity,
            "page_size": self.page_size,
        }


#: The baseline 16-node SHRIMP configuration.
DEFAULT_PARAMS = MachineParams()
