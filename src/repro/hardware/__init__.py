"""Simulated node hardware: parameters, memory, bus, CPU, MMU."""

from .bus import MemoryBus
from .cpu import CPU
from .memory import OutOfMemoryError, PhysicalMemory
from .mmu import AddressSpace, PageFault, PageMode, PageTableEntry, Protection
from .params import DEFAULT_PARAMS, MachineParams

__all__ = [
    "MachineParams",
    "DEFAULT_PARAMS",
    "PhysicalMemory",
    "OutOfMemoryError",
    "MemoryBus",
    "CPU",
    "AddressSpace",
    "PageFault",
    "PageMode",
    "PageTableEntry",
    "Protection",
]
