"""Virtual memory: per-process address spaces, protections, page modes.

The SHRIMP design leans on three Pentium/Xpress properties (paper S2.1):
caches snoop the bus and stay consistent, caching mode is selectable
**per page** (write-back / write-through / uncached), and the bus is not
cycle-shared.  The per-page write-through mode is what makes automatic
update possible — stores to AU-bound pages must appear on the bus so the
NIC's snoop logic can see them.  The MMU records that mode per page.

Shared virtual memory builds on the protection machinery: SVM protocols set
pages to ``PROT_NONE``/``PROT_READ`` and catch :class:`PageFault` to drive
invalidation-based consistency.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from .memory import PhysicalMemory

__all__ = [
    "Protection",
    "PageMode",
    "PageFault",
    "PageTableEntry",
    "AddressSpace",
]


class Protection(enum.IntEnum):
    """Access rights on a virtual page."""

    NONE = 0
    READ = 1
    WRITE = 2  # implies read


class PageMode(enum.Enum):
    """Per-page cache mode (Pentium PCD/PWT page-table bits)."""

    WRITE_BACK = "write-back"
    WRITE_THROUGH = "write-through"
    UNCACHED = "uncached"


class PageFault(Exception):
    """An access violated the page's protection (or the page is unmapped)."""

    def __init__(self, vpage: int, access: Protection, mapped: bool):
        self.vpage = vpage
        self.access = access
        self.mapped = mapped
        kind = "write" if access == Protection.WRITE else "read"
        state = "protected" if mapped else "unmapped"
        super().__init__(f"{kind} fault on {state} virtual page {vpage}")


@dataclass
class PageTableEntry:
    frame: int
    protection: Protection
    mode: PageMode


class AddressSpace:
    """One process's page table over a node's physical memory."""

    def __init__(self, memory: PhysicalMemory):
        self.memory = memory
        self.page_size = memory.page_size
        self._table: Dict[int, PageTableEntry] = {}
        self._next_vpage = 16  # leave low pages unmapped to catch bad addresses

    # -- mapping ------------------------------------------------------------

    def map_page(
        self,
        vpage: int,
        frame: int,
        protection: Protection = Protection.WRITE,
        mode: PageMode = PageMode.WRITE_BACK,
    ) -> None:
        if vpage in self._table:
            raise ValueError(f"virtual page {vpage} already mapped")
        self._table[vpage] = PageTableEntry(frame, protection, mode)

    def unmap_page(self, vpage: int) -> PageTableEntry:
        try:
            return self._table.pop(vpage)
        except KeyError:
            raise ValueError(f"virtual page {vpage} not mapped") from None

    def alloc_region(
        self,
        npages: int,
        protection: Protection = Protection.WRITE,
        mode: PageMode = PageMode.WRITE_BACK,
    ) -> int:
        """Allocate fresh frames and map them contiguously; returns the base
        virtual address."""
        base_vpage = self._next_vpage
        self._next_vpage += npages
        frames = self.memory.alloc_frames(npages)
        for i, frame in enumerate(frames):
            self.map_page(base_vpage + i, frame, protection, mode)
        return base_vpage * self.page_size

    def entry(self, vpage: int) -> Optional[PageTableEntry]:
        return self._table.get(vpage)

    def is_mapped(self, vpage: int) -> bool:
        return vpage in self._table

    def mapped_pages(self) -> List[int]:
        return sorted(self._table)

    # -- protection / mode -----------------------------------------------

    def protect(self, vpage: int, protection: Protection) -> None:
        self._require(vpage).protection = protection

    def set_mode(self, vpage: int, mode: PageMode) -> None:
        self._require(vpage).mode = mode

    def _require(self, vpage: int) -> PageTableEntry:
        entry = self._table.get(vpage)
        if entry is None:
            raise ValueError(f"virtual page {vpage} not mapped")
        return entry

    # -- translation ------------------------------------------------------

    def vpage_of(self, vaddr: int) -> int:
        return vaddr // self.page_size

    def translate(self, vaddr: int, access: Protection) -> int:
        """Virtual address -> physical address, enforcing protection."""
        vpage, offset = divmod(vaddr, self.page_size)
        entry = self._table.get(vpage)
        if entry is None:
            raise PageFault(vpage, access, mapped=False)
        if entry.protection < access:
            raise PageFault(vpage, access, mapped=True)
        return entry.frame * self.page_size + offset

    # -- data access (performs translation page by page) --------------------

    def read(self, vaddr: int, length: int) -> bytes:
        chunks = []
        for start, size in self._page_spans(vaddr, length):
            phys = self.translate(start, Protection.READ)
            chunks.append(self.memory.read(phys, size))
        return b"".join(chunks)

    def write(self, vaddr: int, payload: bytes) -> None:
        offset = 0
        for start, size in self._page_spans(vaddr, len(payload)):
            phys = self.translate(start, Protection.WRITE)
            self.memory.write(phys, payload[offset : offset + size])
            offset += size

    def _page_spans(self, vaddr: int, length: int):
        """Split [vaddr, vaddr+length) into per-page (start, size) spans."""
        remaining = length
        addr = vaddr
        while remaining > 0:
            in_page = self.page_size - (addr % self.page_size)
            size = min(in_page, remaining)
            yield addr, size
            addr += size
            remaining -= size
        if length == 0:
            # Permit zero-length accesses (they still translate the base).
            yield vaddr, 0
