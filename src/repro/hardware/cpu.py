"""CPU cost model.

Application code does not execute on a simulated ISA; instead it charges
cycle costs through this model (``yield from cpu.compute(cycles)``).  The
model also implements **interrupt stealing**: interrupt handlers run on the
node's CPU, so their cost is added to the next timed operation the
application performs.  If the application is blocked waiting for a message
when the interrupt fires, the handler's time overlaps the wait — exactly why
the paper's polling-based libraries (VMMC, sockets) suffer little from
arrival interrupts while compute-heavy phases suffer a lot (Table 4).
"""

from __future__ import annotations

from typing import Generator

from ..sim import Simulator, StatsRegistry
from .params import MachineParams

__all__ = ["CPU"]


class CPU:
    """One node's processor: charges compute time and absorbs interrupts."""

    def __init__(
        self,
        sim: Simulator,
        params: MachineParams,
        node_id: int,
        stats: StatsRegistry,
    ):
        self.sim = sim
        self.params = params
        self.node_id = node_id
        self.stats = stats
        self._pending_steal = 0.0
        self._busy_depth = 0
        self.total_compute_us = 0.0
        self.total_interrupt_us = 0.0

    # -- time charging ----------------------------------------------------

    def compute(self, cycles: float, category: str = "computation") -> Generator:
        """Charge ``cycles`` of computation (plus any stolen interrupt time)."""
        yield from self.busy(self.params.cycles(cycles), category)

    def busy(self, duration: float, category: str = "computation") -> Generator:
        """Charge a fixed-duration CPU activity."""
        stolen, self._pending_steal = self._pending_steal, 0.0
        if duration + stolen > 0:
            tel = self.stats.telemetry
            if tel is not None:
                # Busy-depth timeline: >0 means some process is burning CPU
                # (vs. stalled on communication) — busy_fraction gives the
                # compute-vs-stall split against virtual time.
                self._busy_depth += 1
                tel.timeline(f"cpu.n{self.node_id}", node=self.node_id).record(
                    self.sim.now, self._busy_depth
                )
            try:
                yield duration + stolen
            finally:
                if tel is not None:
                    self._busy_depth -= 1
                    tel.timeline(f"cpu.n{self.node_id}", node=self.node_id).record(
                        self.sim.now, self._busy_depth
                    )
        # Looked up per call on purpose: apps/base.py clears the registry's
        # breakdowns to scope the measured section, replacing the objects —
        # a cached handle would silently charge an orphan.
        breakdown = self.stats.breakdown(self.node_id)
        breakdown.charge(category, duration)
        if stolen:
            breakdown.charge("overhead", stolen)
        self.total_compute_us += duration

    # -- interrupts ---------------------------------------------------------

    def steal(self, duration: float) -> None:
        """Charge interrupt-handler time against this CPU.

        The time is added to the application's next timed operation; when
        the application is blocked, the handler overlaps the wait.
        """
        self._pending_steal += duration
        self.total_interrupt_us += duration
        self.stats.count("cpu.interrupts")

    def drain_steal(self) -> float:
        stolen, self._pending_steal = self._pending_steal, 0.0
        return stolen

    @property
    def pending_steal(self) -> float:
        return self._pending_steal
