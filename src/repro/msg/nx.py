"""An NX-compatible message-passing library on VMMC.

Models the SHRIMP NX implementation (paper reference [2]): every ordered
pair of ranks has a ring channel; sends are deliberate-update record writes
into the destination ring (or automatic-update writes in the AU variant);
receives poll.  The classic NX calls are provided — ``csend``/``crecv``
with type selection — plus the collectives the applications need
(``gsync`` barrier, broadcast, allgather, allreduce).

Messages larger than a ring record are split into a START record carrying
(type, total length) and CONT records; per-pair in-order delivery makes
reassembly trivial.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, Generator, List, Optional, Tuple

from ..sim import Queue, Resource, Signal
from ..vmmc import VMMCEndpoint, VMMCRuntime
from ..node import NodeProcess
from .channel import RingReceiver, RingSender

__all__ = ["NXWorld", "NXRank", "ANY_TYPE", "ANY_SOURCE"]

ANY_TYPE = -1
ANY_SOURCE = -1

_RT_START = 1
_RT_CONT = 2
_META = struct.Struct("<iI")  # message type, total length

#: Reserved message-type range for collectives.
_BARRIER_BASE = 1 << 24
_BCAST_TYPE = (1 << 24) + 4096
_GATHER_BASE = (1 << 24) + 8192
_REDUCE_BASE = (1 << 24) + 16384


class NXWorld:
    """Shared configuration for one NX job.

    ``coll`` switches the collective calls (``gsync``, ``broadcast``, and
    ``allreduce`` when given a named operator) from the host-synthesized
    point-to-point algorithms below to the in-network engines of
    :mod:`repro.coll` — the paper-style knob comparing host-side and
    NIC-side protocol placement without touching application code.  The
    point-to-point calls are unaffected.  Requires rank *r* to live on
    node *r* (the collective trees are embedded in the physical mesh).
    """

    _tags = 0

    def __init__(
        self,
        runtime: VMMCRuntime,
        nprocs: int,
        transport: str = "du",
        ring_bytes: int = 16 * 1024,
        coll=None,
    ):
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        if transport not in ("du", "au"):
            raise ValueError(f"unknown transport {transport!r}")
        self.runtime = runtime
        self.nprocs = nprocs
        self.transport = transport
        self.ring_bytes = ring_bytes
        NXWorld._tags += 1
        self.tag = NXWorld._tags
        self.ranks: Dict[int, "NXRank"] = {}
        self.coll_world = None
        if coll is not None:
            from ..coll import CollWorld

            self.coll_world = CollWorld(runtime.machine, nprocs, coll)

    def join(self, rank: int, proc: NodeProcess) -> Generator:
        """Create rank ``rank`` on ``proc``; returns an :class:`NXRank`.

        Must be executed concurrently by every rank (channel setup is an
        all-to-all rendezvous).
        """
        if not 0 <= rank < self.nprocs:
            raise ValueError(f"rank {rank} outside world of {self.nprocs}")
        endpoint = self.runtime.endpoint(proc)
        nx_rank = NXRank(self, rank, endpoint)
        if self.coll_world is not None:
            nx_rank._coll = self.coll_world.join(rank, proc)
        self.ranks[rank] = nx_rank
        yield from nx_rank._init()
        return nx_rank

    def _ring_name(self, dst: int, src: int) -> str:
        return f"nx{self.tag}.{dst}.from.{src}"


class NXRank:
    """One rank's handle on the NX library."""

    def __init__(self, world: NXWorld, rank: int, endpoint: VMMCEndpoint):
        self.world = world
        self.rank = rank
        self.endpoint = endpoint
        self._receivers: Dict[int, RingReceiver] = {}
        self._senders: Dict[int, RingSender] = {}
        #: Per-destination send mutex: concurrent isends to one peer must
        #: not interleave their records on the shared ring.
        self._send_locks: Dict[int, Resource] = {}
        #: Fully reassembled messages awaiting crecv: (src, type, data).
        self._pending: List[Tuple[int, int, bytes]] = []
        self._new_message = Signal(endpoint.sim, f"nx{rank}.msg")
        #: In-network collective handle (set by NXWorld.join when the
        #: world was built with a ``coll`` config; None: host-side paths).
        self._coll = None
        self.messages_sent = 0
        self.messages_received = 0

    @property
    def nprocs(self) -> int:
        return self.world.nprocs

    @property
    def sim(self):
        return self.endpoint.sim

    def _init(self) -> Generator:
        world = self.world
        others = [r for r in range(world.nprocs) if r != self.rank]
        # Phase 1: export all incoming rings (non-blocking w.r.t. peers).
        # Notifications are enabled at the buffer level; only synchronization
        # sends set the sender-side interrupt bit (the ~1% of NX messages
        # that notify in the paper's Table 3).
        for src in others:
            self._receivers[src] = yield from RingReceiver.export_only(
                self.endpoint,
                world._ring_name(self.rank, src),
                world.ring_bytes,
                enable_notifications=True,
            )
        # Phase 2: connect senders (blocks until peers finish phase 1).
        for dst in others:
            self._senders[dst] = yield from RingSender.create(
                self.endpoint, world._ring_name(dst, self.rank), world.transport
            )
            self._send_locks[dst] = Resource(
                self.sim, name=f"nx{self.rank}.sendlock.{dst}"
            )
        # Phase 3: wire up credit paths (peers exported them in phase 2).
        for src in others:
            yield from self._receivers[src].connect()
            self.sim.spawn(
                self._listener(src), f"nx{self.rank}.listen.{src}", daemon=True
            )
        # Synchronization notifications need no handler work: the library
        # polls for data; the control transfer itself is the cost.
        self.endpoint.set_notification_handler(lambda _buffer, _packet: None)

    # -- receive plumbing -------------------------------------------------

    def _listener(self, src: int) -> Generator:
        receiver = self._receivers[src]
        while True:
            rtype, data = yield from receiver.recv_record()
            if rtype != _RT_START:
                raise RuntimeError(f"NX framing error: got record type {rtype}")
            msg_type, total = _META.unpack(data[: _META.size])
            chunks = [data[_META.size :]]
            got = len(chunks[0])
            while got < total:
                rtype, chunk = yield from receiver.recv_record()
                if rtype != _RT_CONT:
                    raise RuntimeError("NX framing error inside message body")
                chunks.append(chunk)
                got += len(chunk)
            self._pending.append((src, msg_type, b"".join(chunks)))
            self.messages_received += 1
            self._new_message.fire()

    # -- point to point -----------------------------------------------------

    def csend(
        self, msg_type: int, data: bytes, dest: int, notify: bool = False
    ) -> Generator:
        """Synchronous typed send (returns when the data is out of the
        sender's memory).  ``notify`` sets the interrupt-request bit."""
        if dest == self.rank:
            raise ValueError("NX send to self is not supported")
        tel = self.endpoint.stats.telemetry
        span = None
        if tel is not None:
            span = tel.begin(
                "nx.csend",
                self.endpoint.node_id,
                "app",
                dest=dest,
                bytes=len(data),
                type=msg_type,
            )
        sender = self._senders[dest]
        lock = self._send_locks[dest]
        yield from lock.acquire()
        try:
            max_chunk = sender.max_record - _META.size
            first = data[:max_chunk]
            yield from sender.send_record(
                _RT_START, _META.pack(msg_type, len(data)) + first,
                interrupt=notify,
            )
            offset = len(first)
            while offset < len(data):
                chunk = data[offset : offset + sender.max_record]
                yield from sender.send_record(_RT_CONT, chunk)
                offset += len(chunk)
        finally:
            lock.release()
            if tel is not None:
                tel.end(span)
        self.messages_sent += 1

    def isend(self, msg_type: int, data: bytes, dest: int):
        """Asynchronous send; returns a handle for :meth:`msgwait`."""
        return self.sim.spawn(
            self.csend(msg_type, data, dest), f"nx{self.rank}.isend"
        )

    def irecv(self, typesel: int = ANY_TYPE, source: int = ANY_SOURCE):
        """Asynchronous receive; returns a handle whose :meth:`msgwait`
        result is (src, type, data)."""
        return self.sim.spawn(
            self.crecv(typesel, source), f"nx{self.rank}.irecv"
        )

    def msgwait(self, handle) -> Generator:
        """Block until an isend/irecv handle completes; returns its result."""
        result = yield handle
        return result

    def crecv(
        self, typesel: int = ANY_TYPE, source: int = ANY_SOURCE
    ) -> Generator:
        """Blocking typed receive; returns (src, type, data)."""
        tel = self.endpoint.stats.telemetry
        span = None
        if tel is not None:
            span = tel.begin(
                "nx.crecv",
                self.endpoint.node_id,
                "app",
                typesel=typesel,
                source=source,
            )
        while True:
            for i, (src, msg_type, data) in enumerate(self._pending):
                if typesel not in (ANY_TYPE, msg_type):
                    continue
                if source not in (ANY_SOURCE, src):
                    continue
                del self._pending[i]
                if tel is not None:
                    tel.end(span, src=src, bytes=len(data))
                return src, msg_type, data
            yield from self._new_message.wait()

    # -- collectives ----------------------------------------------------------

    def gsync(self) -> Generator:
        """Barrier: in-network when the world has a ``coll`` config,
        host-side dissemination over point-to-point messages otherwise."""
        if self._coll is not None:
            yield from self._coll.barrier()
            self.endpoint.stats.count("nx.barriers")
            return
        nprocs = self.nprocs
        if nprocs == 1:
            return
        tel = self.endpoint.stats.telemetry
        span = None
        if tel is not None:
            span = tel.begin("nx.gsync", self.endpoint.node_id, "app")
        round_no = 0
        distance = 1
        while distance < nprocs:
            peer_to = (self.rank + distance) % nprocs
            peer_from = (self.rank - distance) % nprocs
            yield from self.csend(_BARRIER_BASE + round_no, b"B", peer_to,
                                  notify=True)
            yield from self.crecv(_BARRIER_BASE + round_no, peer_from)
            distance *= 2
            round_no += 1
        self.endpoint.stats.count("nx.barriers")
        if tel is not None:
            tel.end(span, rounds=round_no)

    def broadcast(self, root: int, data: Optional[bytes]) -> Generator:
        """Broadcast; returns the data on every rank.  In-network
        (switch-replicated spanning tree) with a ``coll`` config,
        host-side binomial tree otherwise."""
        if self._coll is not None:
            result = yield from self._coll.bcast(root, data)
            return result
        nprocs = self.nprocs
        if nprocs == 1:
            return data
        vrank = (self.rank - root) % nprocs
        if vrank != 0:
            # Parent: clear the highest set bit of the virtual rank.
            parent = vrank - (1 << (vrank.bit_length() - 1))
            src = (parent + root) % nprocs
            _, _, data = yield from self.crecv(_BCAST_TYPE, src)
        mask = 1 << vrank.bit_length()
        if vrank == 0:
            mask = 1
        while vrank + mask < nprocs:
            dest = (vrank + mask + root) % nprocs
            yield from self.csend(_BCAST_TYPE, data, dest)
            mask *= 2
        return data

    def allgather(self, data: bytes) -> Generator:
        """Every rank contributes ``data``; returns the list by rank."""
        parts: List[Optional[bytes]] = [None] * self.nprocs
        parts[self.rank] = data
        for other in range(self.nprocs):
            if other == self.rank:
                continue
            yield from self.csend(_GATHER_BASE + self.rank, data, other)
        for src in range(self.nprocs):
            if src == self.rank:
                continue
            _, _, payload = yield from self.crecv(_GATHER_BASE + src, src)
            parts[src] = payload
        return parts  # type: ignore[return-value]

    def allreduce(
        self,
        value: float,
        op: Callable[[float, float], float],
        name: Optional[str] = None,
    ) -> Generator:
        """Allreduce of one float (recursive doubling; allgather fallback
        for non-power-of-two worlds, where doubling would double-count).

        ``name`` identifies the operator ("sum"/"min"/"max") so that a
        world with a ``coll`` config can run it on the in-network
        combining engines; an unnamed ``op`` is an arbitrary Python
        callable, which only the host-side path can evaluate.
        """
        if self._coll is not None and name in ("sum", "min", "max"):
            result = yield from self._coll.allreduce(value, op=name)
            return result
        nprocs = self.nprocs
        if nprocs & (nprocs - 1):
            parts = yield from self.allgather(struct.pack("<d", value))
            result = struct.unpack("<d", parts[0])[0]
            for part in parts[1:]:
                result = op(result, struct.unpack("<d", part)[0])
            return result
        result = value
        distance = 1
        round_no = 0
        while distance < nprocs:
            peer_to = (self.rank + distance) % nprocs
            peer_from = (self.rank - distance) % nprocs
            yield from self.csend(
                _REDUCE_BASE + round_no, struct.pack("<d", result), peer_to
            )
            _, _, payload = yield from self.crecv(_REDUCE_BASE + round_no, peer_from)
            result = op(result, struct.unpack("<d", payload)[0])
            distance *= 2
            round_no += 1
        return result
