"""A stream-sockets-compatible library on VMMC.

Models the SHRIMP sockets library (paper reference [17]): connections are
pairs of ring channels (one per direction) carrying length-prefixed data
records; ``send``/``recv`` provide ordered reliable byte streams, and the
``send_block`` extension marks the large block transfers the DFS
application uses.  Like the real library, receivers poll — sockets
applications take **zero** notifications (Table 3).

Connection establishment is a rendezvous through a machine-wide listen
queue (the real system used an out-of-band name service), after which both
sides stand up their rings; all data then flows through VMMC proper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ..sim import Queue
from ..vmmc import VMMCEndpoint, VMMCRuntime
from ..sim.ids import RunScopedCounter
from .channel import RingReceiver, RingSender

__all__ = ["SocketAPI", "Listener", "Connection"]

_RT_DATA = 1
_RT_FIN = 2

_conn_ids = RunScopedCounter(1)


@dataclass
class _ConnectRequest:
    conn_id: int
    client_node: int


class SocketAPI:
    """Machine-wide sockets service."""

    def __init__(
        self,
        runtime: VMMCRuntime,
        transport: str = "du",
        ring_bytes: int = 32 * 1024,
    ):
        if transport not in ("du", "au"):
            raise ValueError(f"unknown transport {transport!r}")
        self.runtime = runtime
        self.transport = transport
        self.ring_bytes = ring_bytes
        self._listen_queues = runtime.machine.registry("sockets.listen")

    def _queue_for(self, port: int) -> Queue:
        if port not in self._listen_queues:
            self._listen_queues[port] = Queue(self.runtime.sim, f"listen.{port}")
        return self._listen_queues[port]

    def listen(self, endpoint: VMMCEndpoint, port: int) -> "Listener":
        return Listener(self, endpoint, port)

    def connect(self, endpoint: VMMCEndpoint, port: int) -> Generator:
        """Connect to whoever listens on ``port``; returns a Connection."""
        conn_id = next(_conn_ids)
        # Connection setup cost (name lookup + handshake software).
        yield from endpoint.node.cpu.busy(endpoint.params.syscall_us, "overhead")
        self._queue_for(port).put(_ConnectRequest(conn_id, endpoint.node_id))
        rx = yield from RingReceiver.export_only(
            endpoint, f"sock.{conn_id}.s2c", self.ring_bytes
        )
        tx = yield from RingSender.create(
            endpoint, f"sock.{conn_id}.c2s", self.transport
        )
        yield from rx.connect()
        return Connection(endpoint, tx, rx)

    def _accept(self, endpoint: VMMCEndpoint, port: int) -> Generator:
        request = yield from self._queue_for(port).get()
        yield from endpoint.node.cpu.busy(endpoint.params.syscall_us, "overhead")
        rx = yield from RingReceiver.export_only(
            endpoint, f"sock.{request.conn_id}.c2s", self.ring_bytes
        )
        tx = yield from RingSender.create(
            endpoint, f"sock.{request.conn_id}.s2c", self.transport
        )
        yield from rx.connect()
        return Connection(endpoint, tx, rx, peer_node=request.client_node)


class Listener:
    """A passive socket bound to a port."""

    def __init__(self, api: SocketAPI, endpoint: VMMCEndpoint, port: int):
        self.api = api
        self.endpoint = endpoint
        self.port = port

    def accept(self) -> Generator:
        """Block for the next incoming connection; returns a Connection."""
        connection = yield from self.api._accept(self.endpoint, self.port)
        return connection


class Connection:
    """One end of an established stream connection."""

    def __init__(
        self,
        endpoint: VMMCEndpoint,
        tx: RingSender,
        rx: RingReceiver,
        peer_node: Optional[int] = None,
    ):
        self.endpoint = endpoint
        self._tx = tx
        self._rx = rx
        self.peer_node = peer_node
        self._pending = bytearray()
        self._eof = False
        self._closed = False
        self.bytes_sent = 0
        self.bytes_received = 0

    # -- sending ------------------------------------------------------------

    def send(self, data: bytes) -> Generator:
        """Send the whole byte string (blocks on flow control)."""
        if self._closed:
            raise RuntimeError("send on closed connection")
        offset = 0
        while offset < len(data):
            chunk = data[offset : offset + self._tx.max_record]
            yield from self._tx.send_record(_RT_DATA, chunk)
            offset += len(chunk)
        self.bytes_sent += len(data)

    def send_block(self, data: bytes) -> Generator:
        """The VMMC-sockets block-transfer extension (used by DFS)."""
        self.endpoint.stats.count("sockets.block_sends")
        yield from self.send(data)

    def close(self) -> Generator:
        if not self._closed:
            self._closed = True
            yield from self._tx.send_record(_RT_FIN, b"F")

    # -- receiving -----------------------------------------------------------

    def recv(self, nbytes: int, exact: bool = True) -> Generator:
        """Receive up to ``nbytes`` (exactly ``nbytes`` when ``exact``,
        unless the peer closed first).  Returns b"" at EOF."""
        while len(self._pending) < nbytes and not self._eof:
            rtype, data = yield from self._rx.recv_record()
            if rtype == _RT_FIN:
                self._eof = True
            elif rtype == _RT_DATA:
                self._pending.extend(data)
            else:
                raise RuntimeError(f"bad socket record type {rtype}")
            if not exact and self._pending:
                break
        take = min(nbytes, len(self._pending))
        out = bytes(self._pending[:take])
        del self._pending[:take]
        self.bytes_received += len(out)
        return out

    def recv_exactly(self, nbytes: int) -> Generator:
        data = yield from self.recv(nbytes, exact=True)
        if len(data) != nbytes:
            raise RuntimeError("connection closed mid-message")
        return data
