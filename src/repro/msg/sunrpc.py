"""A SunRPC-compatible layer: XDR marshalling over the fast-RPC transport.

The paper's section 3 lists *both* a SunRPC-compatible library and a
specialized RPC library (reference [7]).  :mod:`repro.msg.rpc` is the
specialized one (raw bytes, minimum overhead); this module is the
compatible one: procedures take and return typed Python values, marshalled
with XDR — the External Data Representation of RFC 1014 that SunRPC
mandates — at real CPU cost, so the performance gap between the two
libraries (marshalling!) is measurable, just as it was on SHRIMP.

Supported XDR types: int (signed 32-bit), bool, float (as XDR double),
str (counted, 4-byte-aligned), bytes (opaque, counted), and lists of any
supported type (homogeneous arrays are not required).

Usage::

    server = SunRPCServer(runtime)
    server.register("concat", lambda a, b: a + b)
    machine.sim.spawn(server.serve(endpoint, "strings"), "sunrpc")

    client = yield from SunRPCClient.bind(endpoint, "strings")
    result = yield from client.call("concat", "foo", "bar")   # 'foobar'
"""

from __future__ import annotations

import struct
from typing import Any, Generator, List, Tuple

from .rpc import RPCClient, RPCError, RPCServer

__all__ = [
    "xdr_encode",
    "xdr_decode",
    "SunRPCServer",
    "SunRPCClient",
    "XDRError",
]

_I32 = struct.Struct(">i")      # XDR is big-endian
_U32 = struct.Struct(">I")
_F64 = struct.Struct(">d")

_T_INT = 0
_T_BOOL = 1
_T_DOUBLE = 2
_T_STRING = 3
_T_OPAQUE = 4
_T_LIST = 5

#: CPU cycles per marshalled byte (the SunRPC tax the fast library avoids).
MARSHAL_CYCLES_PER_BYTE = 4.0


class XDRError(ValueError):
    """A value cannot be XDR-encoded, or a payload is malformed."""


def _pad4(data: bytes) -> bytes:
    return data + bytes((4 - len(data) % 4) % 4)


def xdr_encode(value: Any) -> bytes:
    """Encode one supported value with a leading type discriminant."""
    if isinstance(value, bool):  # before int: bool is an int subclass
        return _U32.pack(_T_BOOL) + _U32.pack(1 if value else 0)
    if isinstance(value, int):
        if not -(2**31) <= value < 2**31:
            raise XDRError(f"int out of XDR 32-bit range: {value}")
        return _U32.pack(_T_INT) + _I32.pack(value)
    if isinstance(value, float):
        return _U32.pack(_T_DOUBLE) + _F64.pack(value)
    if isinstance(value, str):
        raw = value.encode("utf-8")
        return _U32.pack(_T_STRING) + _U32.pack(len(raw)) + _pad4(raw)
    if isinstance(value, bytes):
        return _U32.pack(_T_OPAQUE) + _U32.pack(len(value)) + _pad4(value)
    if isinstance(value, list):
        body = b"".join(xdr_encode(item) for item in value)
        return _U32.pack(_T_LIST) + _U32.pack(len(value)) + body
    raise XDRError(f"unsupported XDR type: {type(value).__name__}")


def _decode_one(payload: bytes, pos: int) -> Tuple[Any, int]:
    if pos + 4 > len(payload):
        raise XDRError("truncated XDR payload")
    (tag,) = _U32.unpack_from(payload, pos)
    pos += 4
    if tag == _T_INT:
        (value,) = _I32.unpack_from(payload, pos)
        return value, pos + 4
    if tag == _T_BOOL:
        (raw,) = _U32.unpack_from(payload, pos)
        return bool(raw), pos + 4
    if tag == _T_DOUBLE:
        (value,) = _F64.unpack_from(payload, pos)
        return value, pos + 8
    if tag in (_T_STRING, _T_OPAQUE):
        (length,) = _U32.unpack_from(payload, pos)
        pos += 4
        raw = payload[pos : pos + length]
        if len(raw) != length:
            raise XDRError("truncated XDR string/opaque")
        pos += length + (4 - length % 4) % 4
        return (raw.decode("utf-8") if tag == _T_STRING else raw), pos
    if tag == _T_LIST:
        (count,) = _U32.unpack_from(payload, pos)
        pos += 4
        items = []
        for _ in range(count):
            item, pos = _decode_one(payload, pos)
            items.append(item)
        return items, pos
    raise XDRError(f"unknown XDR type tag {tag}")


def xdr_decode(payload: bytes) -> List[Any]:
    """Decode a concatenation of encoded values."""
    values = []
    pos = 0
    while pos < len(payload):
        value, pos = _decode_one(payload, pos)
        values.append(value)
    return values


class SunRPCServer(RPCServer):
    """An RPC server whose procedures take/return Python values."""

    def register(self, name: str, func) -> None:
        def wrapper(payload: bytes, _func=func):
            endpoint = self._current_endpoint
            args = xdr_decode(payload)
            # Unmarshalling tax.
            yield from endpoint.node.cpu.compute(
                MARSHAL_CYCLES_PER_BYTE * len(payload), "communication"
            )
            result = _func(*args)
            if hasattr(result, "send"):
                result = yield from result
            encoded = xdr_encode(result)
            # Marshalling tax for the reply.
            yield from endpoint.node.cpu.compute(
                MARSHAL_CYCLES_PER_BYTE * len(encoded), "communication"
            )
            return encoded

        super().register(name, wrapper)

    def serve(self, endpoint, service: str) -> Generator:
        self._current_endpoint = endpoint
        yield from super().serve(endpoint, service)


class SunRPCClient:
    """A bound SunRPC client: typed calls with XDR marshalling costs."""

    def __init__(self, raw: RPCClient):
        self._raw = raw
        self.endpoint = raw.endpoint

    @classmethod
    def bind(cls, endpoint, service: str, **kwargs) -> Generator:
        raw = yield from RPCClient.bind(endpoint, service, **kwargs)
        return cls(raw)

    def call(self, procedure: str, *args: Any) -> Generator:
        """Call with Python-value arguments; returns the decoded result."""
        payload = b"".join(xdr_encode(arg) for arg in args)
        yield from self.endpoint.node.cpu.compute(
            MARSHAL_CYCLES_PER_BYTE * len(payload), "communication"
        )
        reply = yield from self._raw.call(procedure, payload)
        yield from self.endpoint.node.cpu.compute(
            MARSHAL_CYCLES_PER_BYTE * len(reply), "communication"
        )
        values = xdr_decode(reply)
        if len(values) != 1:
            raise RPCError("SunRPC reply must contain exactly one value")
        return values[0]
