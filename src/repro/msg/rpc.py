"""A fast RPC library on VMMC.

The paper's section 3 lists a SunRPC-compatible library and a specialized
fast-RPC library among the high-level APIs built on SHRIMP (reference [7],
Bilas & Felten, "Fast RPC on the SHRIMP Virtual Memory Mapped Network
Interface").  This module reproduces the specialized design: per-client
request/reply channels established at bind time, arguments written
straight into the server's receive buffer by deliberate update, replies
returned the same way, and polling on both sides — no kernel, no
interrupts, no marshalling beyond the caller's own bytes.

Usage::

    server = RPCServer(runtime)
    server.register("add", add_handler)          # handler may be a
    yield from server.serve(endpoint, "calc")    # generator (timed work)

    client = yield from RPCClient.bind(endpoint, "calc")
    reply = yield from client.call("add", payload)
"""

from __future__ import annotations

import itertools
import struct
from typing import Callable, Dict, Generator, Optional

from ..sim import Queue
from ..vmmc import VMMCEndpoint, VMMCRuntime
from ..sim.ids import RunScopedCounter
from .channel import RingReceiver, RingSender

__all__ = ["RPCServer", "RPCClient", "RPCError"]

_CALL_HDR = struct.Struct("<II")   # call id, procedure name length
_REPLY_HDR = struct.Struct("<IB")  # call id, status
_RT_CALL = 1
_RT_REPLY = 2

_STATUS_OK = 0
_STATUS_NO_SUCH_PROC = 1
_STATUS_HANDLER_ERROR = 2

_client_ids = RunScopedCounter(1)


class RPCError(RuntimeError):
    """A remote procedure call failed at the server."""


class RPCServer:
    """A named RPC service; one service process per connected client."""

    def __init__(self, runtime: VMMCRuntime, ring_bytes: int = 16 * 1024):
        self.runtime = runtime
        self.ring_bytes = ring_bytes
        self._procedures: Dict[str, Callable] = {}
        self.calls_served = 0

    def register(self, name: str, handler: Callable) -> None:
        """Register a procedure.  ``handler(payload: bytes)`` returns the
        reply bytes, or a generator yielding simulated work and returning
        them."""
        if name in self._procedures:
            raise ValueError(f"procedure {name!r} already registered")
        self._procedures[name] = handler

    def serve(self, endpoint: VMMCEndpoint, service: str) -> Generator:
        """Run the service forever on ``endpoint`` (spawn as a process).

        Clients bind through the machine-wide registry; each gets its own
        request/reply channel pair and a dedicated service loop.
        """
        bind_queue: Queue = self.runtime.machine.registry("rpc.bind").setdefault(
            service, Queue(self.runtime.sim, f"rpc.{service}")
        )
        while True:
            client_id = yield from bind_queue.get()
            rx = yield from RingReceiver.export_only(
                endpoint, f"rpc.{service}.{client_id}.req", self.ring_bytes
            )
            tx = yield from RingSender.create(
                endpoint, f"rpc.{service}.{client_id}.rep"
            )
            yield from rx.connect()
            self.runtime.sim.spawn(
                self._service_loop(endpoint, rx, tx),
                f"rpc.{service}.{client_id}",
                daemon=True,
            )

    def _service_loop(self, endpoint, rx: RingReceiver, tx: RingSender) -> Generator:
        while True:
            rtype, data = yield from rx.recv_record()
            if rtype != _RT_CALL:
                raise RPCError(f"bad request record type {rtype}")
            call_id, name_len = _CALL_HDR.unpack_from(data)
            name = data[_CALL_HDR.size : _CALL_HDR.size + name_len].decode()
            payload = data[_CALL_HDR.size + name_len :]
            handler = self._procedures.get(name)
            if handler is None:
                yield from tx.send_record(
                    _RT_REPLY, _REPLY_HDR.pack(call_id, _STATUS_NO_SUCH_PROC)
                )
                continue
            try:
                result = handler(payload)
                if hasattr(result, "send"):  # generator: timed server work
                    result = yield from result
            except Exception:
                yield from tx.send_record(
                    _RT_REPLY, _REPLY_HDR.pack(call_id, _STATUS_HANDLER_ERROR)
                )
                continue
            self.calls_served += 1
            endpoint.stats.count("rpc.calls_served")
            yield from tx.send_record(
                _RT_REPLY, _REPLY_HDR.pack(call_id, _STATUS_OK) + (result or b"")
            )


class RPCClient:
    """A bound client: synchronous calls over a private channel pair."""

    def __init__(self, endpoint: VMMCEndpoint, tx: RingSender, rx: RingReceiver):
        self.endpoint = endpoint
        self._tx = tx
        self._rx = rx
        self._call_ids = itertools.count(1)
        self.calls_made = 0

    @classmethod
    def bind(
        cls,
        endpoint: VMMCEndpoint,
        service: str,
        runtime: Optional[VMMCRuntime] = None,
        ring_bytes: int = 16 * 1024,
    ) -> Generator:
        """Connect to ``service``; returns a bound client."""
        runtime = runtime or endpoint.runtime
        client_id = next(_client_ids)
        bind_queue = runtime.machine.registry("rpc.bind").setdefault(
            service, Queue(runtime.sim, f"rpc.{service}")
        )
        # Binding costs a control-plane round (name service).
        yield from endpoint.node.cpu.busy(endpoint.params.syscall_us, "overhead")
        rx = yield from RingReceiver.export_only(
            endpoint, f"rpc.{service}.{client_id}.rep", ring_bytes
        )
        bind_queue.put(client_id)
        tx = yield from RingSender.create(
            endpoint, f"rpc.{service}.{client_id}.req"
        )
        yield from rx.connect()
        return cls(endpoint, tx, rx)

    def call(self, procedure: str, payload: bytes = b"") -> Generator:
        """Synchronous call; returns the reply bytes (raises RPCError on
        server-side failure)."""
        call_id = next(self._call_ids)
        name = procedure.encode()
        yield from self._tx.send_record(
            _RT_CALL, _CALL_HDR.pack(call_id, len(name)) + name + payload
        )
        rtype, data = yield from self._rx.recv_record()
        if rtype != _RT_REPLY:
            raise RPCError(f"bad reply record type {rtype}")
        got_id, status = _REPLY_HDR.unpack_from(data)
        if got_id != call_id:
            raise RPCError(f"reply id {got_id} for call {call_id}")
        if status == _STATUS_NO_SUCH_PROC:
            raise RPCError(f"no such procedure: {procedure}")
        if status != _STATUS_OK:
            raise RPCError(f"remote handler failed for {procedure!r}")
        self.calls_made += 1
        self.endpoint.stats.count("rpc.calls_made")
        return data[_REPLY_HDR.size :]
