"""Unidirectional ring channels over VMMC.

Both the NX message-passing library and the stream-sockets library move
data the same way (as their real SHRIMP implementations did): the receiver
exports a ring receive buffer; the sender imports it and writes
length-prefixed records into it — by deliberate update (the default) or by
an automatic-update binding with combining (the "AU as bulk transfer"
variants of section 4.2).  The receiver polls for arrival and returns ring
space with credit messages.

Wire format: every record is an 8-byte header (u32 length, u32 type)
followed by the payload padded to 8 bytes, so the write pointer stays
8-aligned and a wrap marker always fits.  A WRAP record (type 0xFFFFFFFF)
tells the receiver to continue at offset zero.

Flow control: the sender tracks cumulative ring bytes committed; the
receiver reports cumulative bytes freed through a small credit buffer
(exported by the sender, written by deliberate update) every quarter ring.
"""

from __future__ import annotations

import struct
from typing import Generator, Optional, Tuple

from ..vmmc import ImportedBuffer, ReceiveBuffer, VMMCEndpoint

__all__ = ["RingSender", "RingReceiver", "HEADER_BYTES", "WRAP_TYPE"]

HEADER_BYTES = 8
WRAP_TYPE = 0xFFFFFFFF
_HEADER = struct.Struct("<II")
_CREDIT = struct.Struct("<Q")


def _padded(length: int) -> int:
    return (length + 7) & ~7


class RingReceiver:
    """The consuming end of a ring channel."""

    def __init__(
        self,
        endpoint: VMMCEndpoint,
        buffer: ReceiveBuffer,
        credit_import: Optional[ImportedBuffer],
        credit_staging: int,
        ring_bytes: int,
    ):
        self.endpoint = endpoint
        self.buffer = buffer
        self._credit_import = credit_import
        self._credit_staging = credit_staging
        self.ring_bytes = ring_bytes
        self._read_pos = 0
        self._delivered_expected = 0
        self._freed_total = 0
        self._last_credit = 0
        self.records_received = 0

    @classmethod
    def export_only(
        cls,
        endpoint: VMMCEndpoint,
        name: str,
        ring_bytes: int = 32 * 1024,
        enable_notifications: bool = False,
    ) -> Generator:
        """Phase one of setup: export the ring, don't touch the credit path.

        Use this (followed by :meth:`connect`) when many channels are
        created all-to-all, so every ring is exported before anyone blocks
        importing a credit buffer.
        """
        if ring_bytes % 8 != 0:
            raise ValueError("ring size must be a multiple of 8")
        buffer = yield from endpoint.export(
            ring_bytes, name=name, enable_notifications=enable_notifications
        )
        # Export rounds up to whole pages; both ends must use the actual
        # size (the sender derives it from the imported buffer).
        return cls(endpoint, buffer, None, 0, buffer.nbytes)

    def connect(self) -> Generator:
        """Phase two: import the credit buffer the sender has exported."""
        if self._credit_import is not None:
            return
        self._credit_import = yield from self.endpoint.import_buffer(
            f"{self.buffer.name}.credit"
        )
        self._credit_staging = self.endpoint.alloc(8)

    @classmethod
    def create(
        cls,
        endpoint: VMMCEndpoint,
        name: str,
        ring_bytes: int = 32 * 1024,
        enable_notifications: bool = False,
    ) -> Generator:
        """Export the ring and hook up the credit return path."""
        receiver = yield from cls.export_only(
            endpoint, name, ring_bytes, enable_notifications
        )
        yield from receiver.connect()
        return receiver

    @property
    def max_record(self) -> int:
        return self.ring_bytes // 4 - HEADER_BYTES

    def recv_record(self) -> Generator:
        """Block until the next record is complete; returns (type, bytes)."""
        while True:
            yield from self.endpoint.wait_bytes(
                self.buffer, self._delivered_expected + HEADER_BYTES
            )
            header = self.endpoint.read_buffer(self.buffer, self._read_pos, HEADER_BYTES)
            length, rtype = _HEADER.unpack(header)
            if rtype == WRAP_TYPE:
                self._delivered_expected += HEADER_BYTES
                self._freed_total += self.ring_bytes - self._read_pos
                self._read_pos = 0
                yield from self._maybe_credit()
                continue
            padded = _padded(length)
            yield from self.endpoint.wait_bytes(
                self.buffer, self._delivered_expected + HEADER_BYTES + padded
            )
            data = self.endpoint.read_buffer(
                self.buffer, self._read_pos + HEADER_BYTES, length
            )
            consumed = HEADER_BYTES + padded
            self._delivered_expected += consumed
            self._freed_total += consumed
            self._read_pos += consumed
            if self._read_pos == self.ring_bytes:
                self._read_pos = 0
            self.records_received += 1
            yield from self._maybe_credit()
            return rtype, data

    def try_recv_record(self) -> Generator:
        """Non-blocking receive: the next complete record or None.

        Used by notification-driven consumers (the SVM daemon), which are
        invoked per arrival and must drain whatever is complete without
        blocking the dispatcher.
        """
        while True:
            available = self.buffer.bytes_received
            if available < self._delivered_expected + HEADER_BYTES:
                return None
            header = self.endpoint.read_buffer(self.buffer, self._read_pos, HEADER_BYTES)
            length, rtype = _HEADER.unpack(header)
            if rtype == WRAP_TYPE:
                self._delivered_expected += HEADER_BYTES
                self._freed_total += self.ring_bytes - self._read_pos
                self._read_pos = 0
                yield from self._maybe_credit()
                continue
            padded = _padded(length)
            if available < self._delivered_expected + HEADER_BYTES + padded:
                return None
            data = self.endpoint.read_buffer(
                self.buffer, self._read_pos + HEADER_BYTES, length
            )
            consumed = HEADER_BYTES + padded
            self._delivered_expected += consumed
            self._freed_total += consumed
            self._read_pos += consumed
            if self._read_pos == self.ring_bytes:
                self._read_pos = 0
            self.records_received += 1
            yield from self._maybe_credit()
            return rtype, data

    def _maybe_credit(self) -> Generator:
        if self._credit_import is None:
            raise RuntimeError("ring receiver used before connect()")
        if self._freed_total - self._last_credit >= self.ring_bytes // 4:
            self._last_credit = self._freed_total
            self.endpoint.poke(self._credit_staging, _CREDIT.pack(self._freed_total))
            yield from self.endpoint.send(
                self._credit_import, self._credit_staging, 8
            )


class RingSender:
    """The producing end of a ring channel."""

    def __init__(
        self,
        endpoint: VMMCEndpoint,
        imported: ImportedBuffer,
        credit_buffer: ReceiveBuffer,
        staging: int,
        ring_bytes: int,
        transport: str,
        ring_image: Optional[int] = None,
    ):
        self.endpoint = endpoint
        self.imported = imported
        self._credit_buffer = credit_buffer
        self._staging = staging
        self.ring_bytes = ring_bytes
        self.transport = transport
        self._ring_image = ring_image
        self._write_pos = 0
        self._committed = 0
        self._freed = 0
        self.records_sent = 0

    @classmethod
    def create(
        cls,
        endpoint: VMMCEndpoint,
        name: str,
        transport: str = "du",
    ) -> Generator:
        """Import the ring named ``name`` and export its credit buffer."""
        if transport not in ("du", "au"):
            raise ValueError(f"unknown transport {transport!r}")
        imported = yield from endpoint.import_buffer(name)
        ring_bytes = imported.nbytes
        credit_buffer = yield from endpoint.export(8, name=f"{name}.credit")
        staging = endpoint.alloc(ring_bytes // 4)
        ring_image = None
        if transport == "au":
            ring_image = endpoint.alloc(ring_bytes)
            yield from endpoint.bind_au(
                imported, ring_image, imported.remote.npages, combine=True
            )
        return cls(
            endpoint, imported, credit_buffer, staging, ring_bytes, transport,
            ring_image,
        )

    @property
    def max_record(self) -> int:
        return self.ring_bytes // 4 - HEADER_BYTES

    def send_record(
        self,
        rtype: int,
        data: bytes,
        interrupt: bool = False,
        wait_delivered: bool = False,
    ) -> Generator:
        """Write one record into the remote ring (blocks on flow control)."""
        if len(data) > self.max_record:
            raise ValueError(
                f"record of {len(data)} bytes exceeds max {self.max_record}"
            )
        if not 0 <= rtype < WRAP_TYPE:
            raise ValueError(f"record type {rtype} out of range")
        padded = _padded(len(data))
        need = HEADER_BYTES + padded

        if self._write_pos + need > self.ring_bytes:
            pad = self.ring_bytes - self._write_pos
            yield from self._wait_credit(pad + need)
            yield from self._put(
                self._write_pos, _HEADER.pack(0, WRAP_TYPE), False, False
            )
            self._committed += pad
            self._write_pos = 0
        else:
            yield from self._wait_credit(need)

        record = _HEADER.pack(len(data), rtype) + data + bytes(padded - len(data))
        yield from self._put(self._write_pos, record, interrupt, wait_delivered)
        self._committed += need
        self._write_pos += need
        if self._write_pos == self.ring_bytes:
            self._write_pos = 0
        self.records_sent += 1

    def _put(
        self, offset: int, record: bytes, interrupt: bool, wait_delivered: bool = False
    ) -> Generator:
        if self.transport == "du":
            self.endpoint.poke(self._staging, record)
            yield from self.endpoint.send(
                self.imported,
                self._staging,
                len(record),
                dst_offset=offset,
                interrupt=interrupt,
                sync_delivered=wait_delivered,
            )
        else:
            yield from self.endpoint.au_write(self._ring_image + offset, record)
            if wait_delivered:
                yield from self.endpoint.au_drain()
            else:
                yield from self.endpoint.au_flush()

    def _refresh_credit(self) -> None:
        raw = self.endpoint.read_buffer(self._credit_buffer, 0, 8)
        self._freed = _CREDIT.unpack(raw)[0]

    def _wait_credit(self, need: int) -> Generator:
        self._refresh_credit()
        while self._committed + need - self._freed > self.ring_bytes:
            yield from self._credit_buffer.arrival.wait()
            yield from self.endpoint.node.cpu.busy(
                self.endpoint.params.poll_us, "communication"
            )
            self._refresh_credit()

    @property
    def outstanding_bytes(self) -> int:
        return self._committed - self._freed
