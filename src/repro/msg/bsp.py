"""A BSP (bulk-synchronous parallel) library on VMMC.

The paper's section 3 lists a BSP message-passing library among SHRIMP's
high-level APIs (reference [3], Alpert & Philbin, "cBSP: Zero-Cost
Synchronization in a Modified BSP Model").  A BSP computation proceeds in
supersteps: within a superstep each process computes and issues one-sided
puts; a global synchronization ends the superstep, after which every put
issued during it is visible everywhere.

The cBSP insight maps directly onto VMMC: puts are deliberate-update
writes into pre-exported per-peer communication areas, and the superstep
barrier needs no extra acknowledgment traffic because VMMC's sender-based
model already tells each sender when its data has left (and per-pair
ordering plus the barrier's own messages establish visibility).

Usage (inside worker generators)::

    bsp = yield from world.join(pid, proc)
    yield from bsp.put(dest, tag, payload)
    yield from bsp.sync()                    # superstep boundary
    for src, tag, data in bsp.received():    # puts from last superstep
        ...
"""

from __future__ import annotations

import struct
from typing import Dict, Generator, List, Tuple

from ..vmmc import VMMCRuntime
from ..node import NodeProcess
from .channel import RingReceiver, RingSender

__all__ = ["BSPWorld", "BSPProcess"]

_PUT_HDR = struct.Struct("<iI")  # tag, superstep
_RT_PUT = 1
_RT_SYNC = 2


class BSPWorld:
    """Shared configuration of one BSP job."""

    _tags = 0

    def __init__(self, runtime: VMMCRuntime, nprocs: int,
                 ring_bytes: int = 16 * 1024):
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        self.runtime = runtime
        self.nprocs = nprocs
        self.ring_bytes = ring_bytes
        BSPWorld._tags += 1
        self.tag = BSPWorld._tags

    def join(self, pid: int, proc: NodeProcess) -> Generator:
        if not 0 <= pid < self.nprocs:
            raise ValueError(f"pid {pid} outside world of {self.nprocs}")
        endpoint = self.runtime.endpoint(proc)
        member = BSPProcess(self, pid, endpoint)
        yield from member._init()
        return member

    def _ring_name(self, dst: int, src: int) -> str:
        return f"bsp{self.tag}.{dst}.from.{src}"


class BSPProcess:
    """One process's handle on the BSP world."""

    def __init__(self, world: BSPWorld, pid: int, endpoint):
        self.world = world
        self.pid = pid
        self.endpoint = endpoint
        self._receivers: Dict[int, RingReceiver] = {}
        self._senders: Dict[int, RingSender] = {}
        self.superstep = 0
        #: Puts delivered in the superstep that just ended.
        self._delivered: List[Tuple[int, int, bytes]] = []
        #: Puts already received for the *current* superstep (early
        #: arrivals from faster peers, held until our own sync).
        self._early: List[Tuple[int, int, bytes]] = []
        #: Per-peer: has this peer's sync marker for the current superstep
        #: been seen?
        self._sync_seen: Dict[int, int] = {}

    @property
    def nprocs(self) -> int:
        return self.world.nprocs

    def _init(self) -> Generator:
        world = self.world
        others = [p for p in range(world.nprocs) if p != self.pid]
        for src in others:
            self._receivers[src] = yield from RingReceiver.export_only(
                self.endpoint, world._ring_name(self.pid, src), world.ring_bytes
            )
            self._sync_seen[src] = -1
        for dst in others:
            self._senders[dst] = yield from RingSender.create(
                self.endpoint, world._ring_name(dst, self.pid)
            )
        for src in others:
            yield from self._receivers[src].connect()

    # -- puts --------------------------------------------------------------

    def put(self, dest: int, tag: int, payload: bytes) -> Generator:
        """One-sided put: visible at ``dest`` after the next sync."""
        if dest == self.pid:
            self._early.append((self.pid, tag, payload))
            return
        yield from self._senders[dest].send_record(
            _RT_PUT, _PUT_HDR.pack(tag, self.superstep) + payload
        )
        self.endpoint.stats.count("bsp.puts")

    # -- synchronization ------------------------------------------------------

    def sync(self) -> Generator:
        """End the superstep: all puts issued anywhere during it become
        the next superstep's received set."""
        current = self.superstep
        # Announce our superstep end to everyone (the cBSP zero-extra-cost
        # property: these markers double as the barrier).
        for dst in range(self.nprocs):
            if dst != self.pid:
                yield from self._senders[dst].send_record(
                    _RT_SYNC, _PUT_HDR.pack(0, current)
                )
        # Drain each peer's ring until its sync marker for this superstep.
        for src in range(self.nprocs):
            if src == self.pid:
                continue
            while self._sync_seen[src] < current:
                rtype, data = yield from self._receivers[src].recv_record()
                tag, step = _PUT_HDR.unpack_from(data)
                if rtype == _RT_SYNC:
                    self._sync_seen[src] = step
                elif rtype == _RT_PUT:
                    self._early.append((src, tag, data[_PUT_HDR.size :]))
                else:
                    raise RuntimeError(f"bad BSP record type {rtype}")
        self._delivered, self._early = self._early, []
        self.superstep += 1
        self.endpoint.stats.count("bsp.supersteps")

    def received(self) -> List[Tuple[int, int, bytes]]:
        """The (src, tag, payload) puts delivered by the last sync."""
        return list(self._delivered)
