"""Message-passing libraries on VMMC: ring channels, NX, sockets, RPC, BSP."""

from .bsp import BSPProcess, BSPWorld
from .channel import HEADER_BYTES, WRAP_TYPE, RingReceiver, RingSender
from .nx import ANY_SOURCE, ANY_TYPE, NXRank, NXWorld
from .rpc import RPCClient, RPCError, RPCServer
from .sockets import Connection, Listener, SocketAPI
from .sunrpc import SunRPCClient, SunRPCServer, XDRError, xdr_decode, xdr_encode

__all__ = [
    "RingSender",
    "RingReceiver",
    "HEADER_BYTES",
    "WRAP_TYPE",
    "NXWorld",
    "NXRank",
    "ANY_TYPE",
    "ANY_SOURCE",
    "SocketAPI",
    "Listener",
    "Connection",
    "RPCServer",
    "RPCClient",
    "RPCError",
    "BSPWorld",
    "BSPProcess",
    "SunRPCServer",
    "SunRPCClient",
    "XDRError",
    "xdr_encode",
    "xdr_decode",
]
