"""repro: a behavioral reproduction of the SHRIMP multicomputer.

Reproduces "Design Choices in the SHRIMP System: An Empirical Study"
(Blumrich et al., ISCA 1998): the VMMC communication model, the SHRIMP
network interface with automatic and deliberate update, a Paragon-style
mesh backplane, the NX / stream-sockets / shared-virtual-memory software
stacks, the paper's application suite, and the what-if experiment harness
that regenerates every table and figure.

Quick start::

    from repro import Machine, VMMCRuntime

    machine = Machine(num_nodes=2)
    vmmc = VMMCRuntime(machine)
    ...

See ``examples/quickstart.py`` for a complete program.
"""

from .coll import Collective, CollConfig, CollWorld
from .faults import FaultConfig, FaultPlan
from .fleet import Catalog, ExperimentSpec, RunStore, make_spec, run_specs
from .hardware import DEFAULT_PARAMS, MachineParams
from .monitor import HealthMonitor, MonitorConfig, Postmortem
from .nic import DEFAULT_NIC_CONFIG, NICConfig
from .node import Machine, Node, NodeProcess
from .obs import MetricsRegistry, ObsConfig, SamplingProfiler
from .serve import ServeCluster, ServeConfig, SloReport
from .shard import ShardSpec, run_serial, run_sharded, spec_for_nodes
from .sim import Simulator, Timeout
from .telemetry import Telemetry
from .vmmc import (
    DeliveryFailed,
    ReliableChannel,
    ReliableConfig,
    VMMCEndpoint,
    VMMCRuntime,
)

__version__ = "1.8.0"

__all__ = [
    "Machine",
    "Catalog",
    "Collective",
    "CollConfig",
    "CollWorld",
    "ExperimentSpec",
    "make_spec",
    "run_specs",
    "RunStore",
    "Node",
    "NodeProcess",
    "MachineParams",
    "DEFAULT_PARAMS",
    "NICConfig",
    "DEFAULT_NIC_CONFIG",
    "VMMCRuntime",
    "VMMCEndpoint",
    "FaultConfig",
    "FaultPlan",
    "ReliableChannel",
    "ReliableConfig",
    "DeliveryFailed",
    "HealthMonitor",
    "MonitorConfig",
    "MetricsRegistry",
    "ObsConfig",
    "Postmortem",
    "SamplingProfiler",
    "ServeCluster",
    "ServeConfig",
    "SloReport",
    "ShardSpec",
    "spec_for_nodes",
    "run_serial",
    "run_sharded",
    "Simulator",
    "Telemetry",
    "Timeout",
    "__version__",
]
