"""Fleet workloads: what one :class:`ExperimentSpec` actually runs.

Every workload maps a spec to a :class:`FleetResult` — virtual-time
samples, a critical-path attribution vector, the telemetry collector (for
the Chrome-trace sidecar), the health monitor's trips, and any rendered
report text.  Workloads reuse the existing entry points rather than
inventing new measurement paths:

* ``coll`` — the collectives study cell (:mod:`repro.study.collectives`
  semantics): ``mode`` ∈ ``nx`` / ``tree-host`` / ``tree-nic`` barriers
  on ``spec.nodes`` ranks, samples = per-operation barrier span
  durations, attribution from :func:`repro.telemetry.critpath.aggregate`.
* ``ping`` — the bench ping shape: ``spec.nodes - 1`` senders streaming
  into node 0, samples = ``vmmc.send`` span durations.
* ``serve`` — a :class:`repro.serve.ServeCluster` run; samples =
  ``serve.request`` span durations, goodput in ``metrics``.
* ``shard`` — the large-mesh packet model (:mod:`repro.shard`) at
  ``spec.nodes``; samples = per-delivery latencies in virtual time,
  counters in ``metrics``.  Worker count never changes the result (the
  shard determinism contract), so records stay reproducible.
* ``bench:<name>`` — any benchmark registered in
  :data:`repro.bench.core.REGISTRY`, run at ``spec.seed``.
* ``study:<family>`` — a :data:`repro.study.__main__.FAMILIES` entry;
  the rendered tables become the record's ``report.txt`` artifact.

Platforms come from :mod:`repro.study.platforms`; fault plans are the
named entries of :data:`FAULT_PLANS` so a catalog can say
``"fault_plan": ["none", "drop1"]`` and stay declarative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..telemetry import critpath

__all__ = [
    "FleetResult",
    "FleetWorkload",
    "WORKLOADS",
    "FAULT_PLANS",
    "PLATFORMS",
    "resolve_workload",
    "workload_names",
]


@dataclass
class FleetResult:
    """Everything one workload run hands to the record builder."""

    unit: str
    higher_is_better: bool
    samples: List[float]
    attribution: Optional[Dict[str, float]] = None
    #: Operations the attribution sums over.
    ops: int = 0
    #: The run's telemetry collector (None: no trace sidecar).
    telemetry: object = None
    #: The run's health monitor (None: not armed).
    monitor: object = None
    #: Virtual time at the end of the run.
    virtual_end_us: float = 0.0
    #: Workload-specific scalar metrics (goodput, packet counts, ...).
    metrics: Dict[str, float] = field(default_factory=dict)
    #: Rendered report text (None: no report sidecar).
    report: Optional[str] = None


@dataclass(frozen=True)
class FleetWorkload:
    """A registered workload: metadata plus the spec -> result runner."""

    name: str
    unit: str
    higher_is_better: bool
    description: str
    run: Callable[["ExperimentSpec"], FleetResult]


#: Named fault environments a catalog can select declaratively.
#: ``none`` maps to no plan at all (the zero-overhead gate stays closed).
FAULT_PLANS: Dict[str, Optional[dict]] = {
    "none": None,
    "drop1": {"drop_rate": 0.01},
    "corrupt1": {"corrupt_rate": 0.01},
    "outage": {"link_outages": 1, "outage_duration_us": 500.0},
    "rxdiscard": {"rx_overflow_discard": True},
}

#: Platform profiles (see repro.study.platforms).
PLATFORMS = ("shrimp", "myrinet")


def _fault_config(spec) -> Optional[object]:
    if spec.fault_plan not in FAULT_PLANS:
        raise ValueError(
            f"unknown fault plan {spec.fault_plan!r}; "
            f"choose from {sorted(FAULT_PLANS)}"
        )
    knobs = FAULT_PLANS[spec.fault_plan]
    if knobs is None:
        return None
    from ..faults import FaultConfig

    return FaultConfig(**knobs)


def _machine(spec, num_nodes: int):
    """A telemetry-armed, monitor-armed machine for one spec."""
    from ..node import Machine
    from ..study.platforms import (
        myrinet_nic_config,
        myrinet_params,
        shrimp_nic_config,
        shrimp_params,
    )

    if spec.platform == "shrimp":
        params, nic_config = shrimp_params(), shrimp_nic_config()
    elif spec.platform == "myrinet":
        params, nic_config = myrinet_params(), myrinet_nic_config()
    else:
        raise ValueError(
            f"unknown platform {spec.platform!r}; choose from {PLATFORMS}"
        )
    machine = Machine(
        num_nodes=num_nodes,
        params=params,
        nic_config=nic_config,
        seed=spec.seed,
        fault_config=_fault_config(spec),
        telemetry=True,
    )
    machine.enable_monitor()
    return machine


def _span_samples(telemetry, span_name: str) -> List[float]:
    """Per-operation durations with each node's cold first op dropped."""
    by_node: Dict[int, list] = {}
    for root in critpath.operation_roots(telemetry, span_name):
        by_node.setdefault(root.node, []).append(root)
    samples: List[float] = []
    for spans in by_node.values():
        spans.sort(key=lambda span: span.start)
        samples.extend(span.duration for span in spans[1:])
    if not samples:
        samples = [
            span.duration
            for span in critpath.operation_roots(telemetry, span_name)
        ]
    return samples


_COLL_MODES = ("nx", "tree-host", "tree-nic")
_COLL_SPAN = {
    "nx": "nx.gsync",
    "tree-host": "coll.barrier",
    "tree-nic": "coll.barrier",
}


def _run_coll(spec) -> FleetResult:
    from ..coll import CollConfig
    from ..msg import NXWorld
    from ..vmmc import VMMCRuntime

    mode = spec.param("mode", "tree-nic")
    ops = int(spec.param("ops", 8))
    if mode not in _COLL_MODES:
        raise ValueError(
            f"unknown coll mode {mode!r}; choose from {_COLL_MODES}"
        )
    machine = _machine(spec, spec.nodes)
    vmmc = VMMCRuntime(machine)
    coll = None
    if mode == "tree-host":
        coll = CollConfig(backend="host")
    elif mode == "tree-nic":
        coll = CollConfig(backend="nic")
    world = NXWorld(vmmc, spec.nodes, coll=coll)

    def worker(rank: int):
        nx = yield from world.join(rank, machine.create_process(rank))
        # Warmup barrier absorbs the join rendezvous skew; its spans are
        # the cold ops _span_samples drops.
        yield from nx.gsync()
        for _ in range(ops):
            yield from nx.gsync()

    for rank in range(spec.nodes):
        machine.sim.spawn(worker(rank), f"fleet.coll.r{rank}")
    machine.sim.run()

    telemetry = machine.telemetry
    span_name = _COLL_SPAN[mode]
    agg = critpath.aggregate(telemetry, span_name, top=0)
    return FleetResult(
        unit="us",
        higher_is_better=False,
        samples=_span_samples(telemetry, span_name),
        attribution=agg.components,
        ops=agg.count,
        telemetry=telemetry,
        monitor=machine.monitor,
        virtual_end_us=machine.now,
        metrics={
            "coll_packets": float(
                machine.stats.counter_value("coll.packets")
            ),
        },
    )


def _run_ping(spec) -> FleetResult:
    from ..vmmc import ReliableConfig, VMMCRuntime

    nbytes = int(spec.param("nbytes", 4096))
    ops = int(spec.param("ops", 9))
    reliable = bool(spec.param("reliable", False))
    senders = max(1, spec.nodes - 1)
    machine = _machine(spec, senders + 1)
    vmmc = VMMCRuntime(machine)
    receiver = vmmc.endpoint(machine.create_process(0))
    payload = (bytes(range(256)) * (-(-nbytes // 256)))[:nbytes]

    def rx():
        buffers = []
        for s in range(senders):
            buffer = yield from receiver.export(nbytes, name=f"fleet.{s}")
            buffers.append(buffer)
        for buffer in buffers:
            yield from receiver.wait_bytes(buffer, nbytes * ops)

    def tx(s: int):
        endpoint = vmmc.endpoint(machine.create_process(s + 1))
        imported = yield from endpoint.import_buffer(f"fleet.{s}")
        src = endpoint.alloc(nbytes)
        endpoint.poke(src, payload)
        if reliable:
            channel = endpoint.open_reliable(
                imported, ReliableConfig(timeout_us=300.0)
            )
            for _ in range(ops):
                yield from channel.send(src, nbytes)
        else:
            for _ in range(ops):
                yield from endpoint.send(
                    imported, src, nbytes, sync_delivered=True
                )

    machine.sim.spawn(rx(), "fleet.rx")
    for s in range(senders):
        machine.sim.spawn(tx(s), f"fleet.tx{s}")
    machine.sim.run()

    telemetry = machine.telemetry
    agg = critpath.aggregate(telemetry, "vmmc.send", top=0)
    return FleetResult(
        unit="us",
        higher_is_better=False,
        samples=_span_samples(telemetry, "vmmc.send"),
        attribution=agg.components,
        ops=agg.count,
        telemetry=telemetry,
        monitor=machine.monitor,
        virtual_end_us=machine.now,
    )


def _run_serve(spec) -> FleetResult:
    from ..serve import ServeCluster, ServeConfig

    if spec.fault_plan != "none":
        raise ValueError(
            "the serve workload drives chaos through repro.serve scenarios; "
            "use fault_plan='none' (chaos knobs are future work)"
        )
    if spec.platform != "shrimp":
        raise ValueError("the serve workload runs on the shrimp platform")
    num_shards = max(1, spec.nodes // 2)
    config = ServeConfig(
        num_shards=num_shards,
        num_aggregates=max(1, spec.nodes - num_shards),
        balancer=str(spec.param("balancer", "hash")),
        arrivals=str(spec.param("arrivals", "poisson")),
        offered_rps=float(spec.param("rps", 40_000.0)),
        duration_us=float(spec.param("duration_us", 5_000.0)),
    )
    cluster = ServeCluster(config, seed=spec.seed, telemetry=True)
    report = cluster.run()
    machine = cluster.machine
    telemetry = machine.telemetry
    agg = critpath.aggregate(telemetry, "serve.request", top=0)
    samples = [
        span.duration
        for span in critpath.operation_roots(telemetry, "serve.request")
    ]
    return FleetResult(
        unit="us",
        higher_is_better=False,
        samples=samples,
        attribution=agg.components,
        ops=agg.count,
        telemetry=telemetry,
        monitor=machine.monitor,
        virtual_end_us=machine.now,
        metrics={
            "goodput_rps": report.goodput_rps,
            "ok": float(report.ok),
            "late": float(report.late),
            "failed": float(report.failed),
        },
        report=report.render(),
    )


def _run_shard(spec) -> FleetResult:
    """The large-mesh shard model at ``spec.nodes`` (virtual time only).

    Samples are per-delivery latencies; counters (packets, events, hops)
    land in ``metrics``.  Wall-clock figures (events/s, epochs) are
    deliberately excluded: records must regenerate byte-identically, and
    the shard contract makes the result independent of the worker count —
    ``workers`` only changes how fast the same bytes are produced.
    """
    from ..shard import run_serial, run_sharded, spec_for_nodes

    _require_defaults(spec, nodes_free=True)
    workers = int(spec.param("workers", 1))
    shard_spec = spec_for_nodes(
        spec.nodes,
        workload=str(spec.param("pattern", "uniform")),
        duration_us=float(spec.param("duration_us", 120.0)),
        inject_interval_us=float(spec.param("interval_us", 1.0)),
        packet_bytes=int(spec.param("nbytes", 256)),
        seed=spec.seed,
    )
    result = (
        run_sharded(shard_spec, workers) if workers > 1 else run_serial(shard_spec)
    )
    return FleetResult(
        unit="us",
        higher_is_better=False,
        samples=result.latency_samples(),
        ops=result.packets_delivered,
        virtual_end_us=result.virtual_end_us,
        metrics={
            "packets_injected": float(result.packets_injected),
            "packets_delivered": float(result.packets_delivered),
            "events": float(result.events),
            "mean_hops": result.mean_hops,
            "mean_latency_us": result.mean_latency_us,
        },
    )


def _require_defaults(spec, *, nodes_free: bool = False) -> None:
    """``bench:``/``study:``/``shard`` entry points own their machines: the
    spec's platform/fault axes (and for ``bench:`` the node count) must stay
    at their defaults rather than being silently ignored."""
    from .catalog import ExperimentSpec

    if spec.platform != "shrimp" or spec.fault_plan != "none":
        raise ValueError(
            f"workload {spec.workload!r} fixes its own machine; "
            "platform/fault_plan must be the defaults"
        )
    default_nodes = ExperimentSpec.__dataclass_fields__["nodes"].default
    if not nodes_free and spec.nodes != default_nodes:
        raise ValueError(
            f"workload {spec.workload!r} fixes its own machine; "
            f"leave nodes at the default ({default_nodes})"
        )


def _run_bench(spec) -> FleetResult:
    from ..bench.core import REGISTRY, select

    _require_defaults(spec)
    name = spec.workload.split(":", 1)[1]
    select([name])  # populates REGISTRY and validates the name
    bench_spec = REGISTRY[name]
    run = bench_spec.runner(spec.seed)
    if not run.samples:
        raise RuntimeError(f"benchmark {name} produced no samples")
    return FleetResult(
        unit=bench_spec.unit,
        higher_is_better=bench_spec.higher_is_better,
        samples=list(run.samples),
        attribution=run.attribution,
        ops=run.ops,
    )


def _run_study(spec) -> FleetResult:
    from ..study import default_runner
    from ..study.__main__ import FAMILIES

    _require_defaults(spec, nodes_free=True)
    family = spec.workload.split(":", 1)[1]
    if family not in FAMILIES:
        raise ValueError(
            f"unknown study family {family!r}; choose from {sorted(FAMILIES)}"
        )
    _description, _in_all, emitter = FAMILIES[family]
    text = emitter(default_runner, spec.nodes)
    return FleetResult(
        unit="report",
        higher_is_better=False,
        samples=[],
        report=text,
    )


#: Directly registered workloads (the ``bench:``/``study:`` prefixes are
#: resolved dynamically against their own registries).
WORKLOADS: Dict[str, FleetWorkload] = {}


def _register(workload: FleetWorkload) -> None:
    WORKLOADS[workload.name] = workload


_register(
    FleetWorkload(
        "coll", "us", False,
        "barrier latency: mode=nx|tree-host|tree-nic, ops=N",
        _run_coll,
    )
)
_register(
    FleetWorkload(
        "ping", "us", False,
        "(nodes-1)-to-1 vmmc sends: nbytes=N, ops=N, reliable=0|1",
        _run_ping,
    )
)
_register(
    FleetWorkload(
        "serve", "us", False,
        "serving-tier request latency: balancer=..., rps=..., duration_us=...",
        _run_serve,
    )
)
_register(
    FleetWorkload(
        "shard", "us", False,
        "large-mesh packet latency: pattern=..., duration_us=..., workers=N",
        _run_shard,
    )
)


def resolve_workload(name: str) -> FleetWorkload:
    """The workload for a spec's ``workload`` field."""
    if name in WORKLOADS:
        return WORKLOADS[name]
    if name.startswith("bench:"):
        return FleetWorkload(
            name, "?", False, "curated benchmark (see repro.bench)",
            _run_bench,
        )
    if name.startswith("study:"):
        return FleetWorkload(
            name, "report", False, "study family report (see repro.study)",
            _run_study,
        )
    raise ValueError(
        f"unknown workload {name!r}; registered: {sorted(WORKLOADS)}, "
        "plus bench:<benchmark> and study:<family>"
    )


def workload_names() -> List[str]:
    """Registered workload names plus the dynamic prefixes."""
    return sorted(WORKLOADS) + ["bench:<name>", "study:<family>"]
