"""repro.fleet: the catalog-driven experiment fleet runner.

The empirical-study layer (DESIGN.md §15).  The source paper's value is a
*matrix* of measured design choices; this package makes such matrices
cheap to declare, run and keep:

* :mod:`repro.fleet.catalog` — :class:`ExperimentSpec` (frozen,
  content-hash fingerprinted) and matrix expansion into a
  :class:`Catalog`;
* :mod:`repro.fleet.workloads` — what a spec runs (collectives, pings,
  the serving tier, any ``bench:`` benchmark, any ``study:`` family);
* :mod:`repro.fleet.runner` — serial or multiprocess fan-out with
  resumable cache hits;
* :mod:`repro.fleet.store` — ``runs/<fingerprint>/record.json`` plus
  Chrome-trace / postmortem / report sidecars, validated before being
  served from cache.

Quick start::

    python -m repro.fleet run --matrix smoke --workers 2
    python -m repro.fleet run --matrix smoke --workers 2   # 100% cache hits
    python -m repro.explore list

Every run is deterministic and records carry no wall-clock fields, so an
unchanged spec's record reproduces byte-for-byte — which is both the
cache-correctness argument and a regression test.
"""

from .catalog import (
    BUILTIN_MATRICES,
    Catalog,
    ExperimentSpec,
    expand_matrix,
    load_catalog,
    make_spec,
)
from .runner import RunOutcome, build_record, execute_spec, run_specs
from .store import RECORD_SCHEMA, RunStore, StoreError
from .workloads import (
    FAULT_PLANS,
    FleetResult,
    FleetWorkload,
    WORKLOADS,
    resolve_workload,
    workload_names,
)

__all__ = [
    "ExperimentSpec",
    "make_spec",
    "Catalog",
    "expand_matrix",
    "load_catalog",
    "BUILTIN_MATRICES",
    "RunStore",
    "StoreError",
    "RECORD_SCHEMA",
    "RunOutcome",
    "run_specs",
    "execute_spec",
    "build_record",
    "FleetResult",
    "FleetWorkload",
    "WORKLOADS",
    "FAULT_PLANS",
    "resolve_workload",
    "workload_names",
]
