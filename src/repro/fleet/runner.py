"""The fan-out runner: specs -> workers -> run store, with cache hits.

``run_specs`` takes a list of :class:`ExperimentSpec`, checks each
against the store, and executes only the misses (and invalid records,
which are re-run rather than served).  Execution happens either inline
(``workers <= 1``) or on a ``multiprocessing`` pool — every worker runs
the workload **in-process** via the existing study/bench entry points
and writes its own ``runs/<fingerprint>/`` directory, so parallel
workers never share mutable state and a 2-worker fan-out produces
byte-identical records to a serial run (tested).

The record document (``RunRecord``) embeds a ``BENCH_*``-schema stats
entry built by :func:`repro.bench.core.make_entry`, which is what lets
``repro.explore compare`` feed two records straight into the
paired-bootstrap comparison machinery.
"""

from __future__ import annotations

import json
import multiprocessing
import traceback
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .catalog import ExperimentSpec
from .store import RECORD_SCHEMA, RunStore
from .workloads import FleetResult, resolve_workload

__all__ = ["RunOutcome", "build_record", "execute_spec", "run_specs"]


@dataclass
class RunOutcome:
    """What happened to one spec during a fleet run."""

    spec: ExperimentSpec
    fingerprint: str
    #: "cached" | "ran" | "reran" (invalid record replaced) | "error"
    status: str
    error: Optional[str] = None

    @property
    def cached(self) -> bool:
        return self.status == "cached"


def build_record(
    spec: ExperimentSpec, result: FleetResult
) -> Tuple[Dict, Dict[str, str]]:
    """The (record document, sidecar contents) for one finished run.

    No wall-clock fields anywhere: the record is a pure function of the
    spec and the code, so re-runs reproduce it byte-for-byte.
    """
    from .. import __version__
    from ..bench.core import make_entry
    from ..telemetry.export import to_chrome_trace

    fingerprint = spec.fingerprint
    record: Dict = {
        "schema": RECORD_SCHEMA,
        "fingerprint": fingerprint,
        "spec": spec.to_json(),
        "code_version": __version__,
        "workload": spec.workload,
        "unit": result.unit,
        "virtual_end_us": result.virtual_end_us,
        "metrics": result.metrics,
    }
    if result.samples:
        record["bench"] = make_entry(
            result.unit,
            result.higher_is_better,
            result.samples,
            attribution=result.attribution,
            ops=result.ops,
        )
    sidecars: Dict[str, str] = {}
    artifacts: Dict[str, str] = {}
    if result.telemetry is not None:
        label = f"{spec.workload}@{fingerprint}"
        sidecars["trace.json"] = json.dumps(
            to_chrome_trace(result.telemetry, label=label)
        )
        artifacts["trace"] = "trace.json"
    monitor = result.monitor
    if monitor is not None:
        record["monitor"] = {
            "healthy": monitor.healthy,
            "trips": [
                {
                    "kind": trip.kind,
                    "time": trip.time,
                    "subject": trip.subject,
                    "detail": trip.detail,
                }
                for trip in monitor.trips
            ],
        }
        if not monitor.healthy:
            postmortem = monitor.postmortem()
            sidecars["postmortem.json"] = json.dumps(
                postmortem.to_json(), indent=2, sort_keys=True
            )
            artifacts["postmortem"] = "postmortem.json"
    if result.report is not None:
        sidecars["report.txt"] = result.report + "\n"
        artifacts["report"] = "report.txt"
    record["artifacts"] = artifacts
    return record, sidecars


def execute_spec(spec: ExperimentSpec, store: RunStore) -> str:
    """Run one spec and commit its record; returns the record path."""
    workload = resolve_workload(spec.workload)
    result = workload.run(spec)
    record, sidecars = build_record(spec, result)
    return store.put(record, sidecars)


def _pool_worker(args: Tuple[dict, str, object]) -> Tuple[str, Optional[str]]:
    """Module-level so it pickles under both fork and spawn starts.

    ``heartbeats`` (a manager queue, or None) is the fleet's progress
    side-channel: ``("start", fingerprint)`` before the workload runs,
    ``("done", fingerprint, ok)`` after.  Run records never contain
    wall-clock fields, so the heartbeat traffic cannot change a stored
    byte — it only feeds the master's ticker.
    """
    spec_doc, root, heartbeats = args
    spec = ExperimentSpec.from_json(spec_doc)
    if heartbeats is not None:
        heartbeats.put(("start", spec.fingerprint))
    try:
        execute_spec(spec, RunStore(root))
        outcome = (spec.fingerprint, None)
    except Exception:  # noqa: BLE001 - reported per-spec by the caller
        outcome = (spec.fingerprint, traceback.format_exc())
    if heartbeats is not None:
        heartbeats.put(("done", spec.fingerprint, outcome[1] is None))
    return outcome


def _drain_heartbeats(
    heartbeats, progress, described: Dict[str, str],
    statuses_at_send: Dict[str, str], wait_s: float = 0.0,
) -> None:
    """Forward queued worker heartbeats to the progress callback."""
    import queue as _queue

    while True:
        try:
            if wait_s > 0.0:
                event = heartbeats.get(timeout=wait_s)
            else:
                event = heartbeats.get_nowait()
        except _queue.Empty:
            return
        if event[0] == "start":
            fingerprint = event[1]
            progress(("start", fingerprint, described.get(fingerprint, "")))
        else:
            fingerprint, ok = event[1], event[2]
            if not ok:
                status = "error"
            elif statuses_at_send.get(fingerprint) == "invalid":
                status = "reran"
            else:
                status = "ran"
            progress(("done", fingerprint, status))


def run_specs(
    specs: Sequence[ExperimentSpec],
    store: RunStore,
    workers: int = 1,
    force: bool = False,
    log: Optional[Callable[[str], None]] = None,
    progress: Optional[Callable[[Tuple], None]] = None,
) -> List[RunOutcome]:
    """Run a catalog's specs against the store; returns one outcome each.

    Duplicate fingerprints are collapsed (first occurrence wins); valid
    cached records are served without executing anything unless
    ``force``; invalid records are replaced.  Outcomes preserve the
    input order of the surviving specs.

    ``progress``, when given, receives live ``("start", fingerprint,
    description)`` and ``("done", fingerprint, status)`` events — for
    cache hits a lone ``done``/``"cached"`` — from the inline runner
    directly, or relayed off a manager heartbeat queue the pool workers
    feed.  The queue exists only when ``progress`` is set, so the
    default pool path is untouched.
    """

    def note(line: str) -> None:
        if log is not None:
            log(line)

    unique: List[ExperimentSpec] = []
    seen = set()
    for spec in specs:
        if spec.fingerprint not in seen:
            seen.add(spec.fingerprint)
            unique.append(spec)

    pending: List[Tuple[ExperimentSpec, str]] = []
    statuses: Dict[str, str] = {}
    for spec in unique:
        status = store.status(spec)
        if status == "hit" and not force:
            statuses[spec.fingerprint] = "cached"
            note(f"{spec.fingerprint}  cached  {spec.describe()}")
            if progress is not None:
                progress(("done", spec.fingerprint, "cached"))
        else:
            pending.append((spec, status))

    errors: Dict[str, str] = {}
    if pending:
        if workers > 1:
            context = multiprocessing.get_context()
            manager = None
            heartbeats = None
            if progress is not None:
                manager = context.Manager()
                heartbeats = manager.Queue()
            args = [
                (spec.to_json(), store.root, heartbeats)
                for spec, _status in pending
            ]
            try:
                with context.Pool(processes=workers) as pool:
                    if heartbeats is None:
                        for fingerprint, error in pool.imap_unordered(
                            _pool_worker, args
                        ):
                            if error is not None:
                                errors[fingerprint] = error
                    else:
                        described = {
                            spec.fingerprint: spec.describe()
                            for spec, _status in pending
                        }
                        at_send = {
                            spec.fingerprint: status
                            for spec, status in pending
                        }
                        result = pool.map_async(_pool_worker, args)
                        while not result.ready():
                            _drain_heartbeats(
                                heartbeats, progress, described,
                                at_send, wait_s=0.2,
                            )
                        _drain_heartbeats(
                            heartbeats, progress, described, at_send
                        )
                        for fingerprint, error in result.get():
                            if error is not None:
                                errors[fingerprint] = error
            finally:
                if manager is not None:
                    manager.shutdown()
        else:
            for spec, status in pending:
                if progress is not None:
                    progress(("start", spec.fingerprint, spec.describe()))
                try:
                    execute_spec(spec, store)
                except Exception:  # noqa: BLE001 - reported per-spec
                    errors[spec.fingerprint] = traceback.format_exc()
                if progress is not None:
                    if spec.fingerprint in errors:
                        done = "error"
                    else:
                        done = "reran" if status == "invalid" else "ran"
                    progress(("done", spec.fingerprint, done))
        for spec, status in pending:
            if spec.fingerprint in errors:
                statuses[spec.fingerprint] = "error"
                note(f"{spec.fingerprint}  ERROR   {spec.describe()}")
            else:
                verb = "reran " if status == "invalid" else "ran   "
                statuses[spec.fingerprint] = (
                    "reran" if status == "invalid" else "ran"
                )
                note(f"{spec.fingerprint}  {verb} {spec.describe()}")

    return [
        RunOutcome(
            spec=spec,
            fingerprint=spec.fingerprint,
            status=statuses[spec.fingerprint],
            error=errors.get(spec.fingerprint),
        )
        for spec in unique
    ]
