"""The persistent run-artifact store: ``runs/<fingerprint>/record.json``.

One directory per spec fingerprint, holding the canonical
``record.json`` (the :data:`RECORD_SCHEMA` document described in
DESIGN.md §15) plus its sidecars — the Chrome trace, the postmortem dump,
the rendered report.  The record is written **last** and atomically
(temp file + ``os.replace``), so its presence is the commit marker: a
crash mid-run leaves sidecars without a record, which :meth:`RunStore.status`
reports as a miss, and a truncated or hand-edited record fails
validation and is re-run rather than served.

Records carry no wall-clock fields and every run is deterministic, so a
re-run of an unchanged spec reproduces the record **byte-for-byte** —
the property the resumability tests pin.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, Iterator, List, Optional, Tuple

from .catalog import ExperimentSpec

__all__ = [
    "RECORD_SCHEMA",
    "StoreError",
    "RunStore",
    "dumps_record",
]

#: Schema version of record.json documents.
RECORD_SCHEMA = 1

#: Keys every valid record must carry.
_REQUIRED = ("schema", "fingerprint", "spec", "code_version", "workload")


class StoreError(ValueError):
    """A record is missing, unreadable, or fails validation."""


def dumps_record(record: Dict) -> str:
    """Canonical serialization (sorted keys, trailing newline)."""
    return json.dumps(record, indent=2, sort_keys=True) + "\n"


class RunStore:
    """Content-addressed storage for :class:`RunRecord` documents."""

    def __init__(self, root: str = "runs"):
        self.root = root

    # -- paths ------------------------------------------------------------

    def run_dir(self, fingerprint: str) -> str:
        return os.path.join(self.root, fingerprint)

    def record_path(self, fingerprint: str) -> str:
        return os.path.join(self.run_dir(fingerprint), "record.json")

    def artifact_path(self, record: Dict, kind: str) -> Optional[str]:
        """Absolute path of one of a record's sidecars (None: absent)."""
        relative = record.get("artifacts", {}).get(kind)
        if relative is None:
            return None
        return os.path.abspath(
            os.path.join(self.run_dir(record["fingerprint"]), relative)
        )

    # -- writing ----------------------------------------------------------

    def put(self, record: Dict, sidecars: Dict[str, str]) -> str:
        """Write sidecars then commit ``record.json`` atomically."""
        run_dir = self.run_dir(record["fingerprint"])
        os.makedirs(run_dir, exist_ok=True)
        for relative, content in sidecars.items():
            with open(
                os.path.join(run_dir, relative), "w", encoding="utf-8"
            ) as fh:
                fh.write(content)
        blob = dumps_record(record)
        fd, tmp = tempfile.mkstemp(
            dir=run_dir, prefix=".record.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(blob)
            os.replace(tmp, self.record_path(record["fingerprint"]))
        finally:
            if os.path.exists(tmp):  # pragma: no cover - error path
                os.unlink(tmp)
        return self.record_path(record["fingerprint"])

    # -- reading ----------------------------------------------------------

    def load(self, fingerprint: str) -> Dict:
        """Load and validate one record; raises :class:`StoreError`."""
        path = self.record_path(fingerprint)
        if not os.path.exists(path):
            raise StoreError(f"no record for {fingerprint} at {path}")
        try:
            with open(path, "r", encoding="utf-8") as fh:
                record = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreError(f"{path}: unreadable record ({exc})") from exc
        self.validate(record, fingerprint)
        return record

    def validate(self, record: Dict, fingerprint: str) -> None:
        """Schema, fingerprint-consistency and sidecar-presence checks."""
        if not isinstance(record, dict):
            raise StoreError("record is not a JSON object")
        for key in _REQUIRED:
            if key not in record:
                raise StoreError(f"record missing required key {key!r}")
        if record["schema"] != RECORD_SCHEMA:
            raise StoreError(
                f"unsupported record schema {record['schema']!r} "
                f"(expected {RECORD_SCHEMA})"
            )
        if record["fingerprint"] != fingerprint:
            raise StoreError(
                f"record fingerprint {record['fingerprint']!r} does not "
                f"match directory {fingerprint!r}"
            )
        # The spec must hash back to the fingerprint it claims: a record
        # whose spec was edited (or that was copied between directories)
        # is invalid, not silently served.
        spec = ExperimentSpec.from_json(record["spec"])
        if spec.fingerprint != fingerprint:
            raise StoreError(
                f"spec in record hashes to {spec.fingerprint}, "
                f"not {fingerprint}: stale or tampered record"
            )
        for kind, relative in record.get("artifacts", {}).items():
            path = os.path.join(self.run_dir(fingerprint), relative)
            if not os.path.exists(path):
                raise StoreError(f"missing {kind} sidecar {relative!r}")

    def status(self, spec: ExperimentSpec) -> str:
        """``"hit"`` (valid record), ``"invalid"`` (present but bad) or
        ``"miss"``."""
        path = self.record_path(spec.fingerprint)
        if not os.path.exists(path):
            return "miss"
        try:
            self.load(spec.fingerprint)
        except StoreError:
            return "invalid"
        return "hit"

    def fingerprints(self) -> List[str]:
        """Every run directory that holds a ``record.json`` (sorted)."""
        if not os.path.isdir(self.root):
            return []
        out = []
        for name in sorted(os.listdir(self.root)):
            if os.path.exists(self.record_path(name)):
                out.append(name)
        return out

    def records(self) -> Iterator[Tuple[str, Dict]]:
        """Yield ``(fingerprint, record)`` for every *valid* record."""
        for fingerprint in self.fingerprints():
            try:
                yield fingerprint, self.load(fingerprint)
            except StoreError:
                continue

    def invalid(self) -> List[Tuple[str, str]]:
        """``(fingerprint, reason)`` for every invalid stored record."""
        out = []
        for fingerprint in self.fingerprints():
            try:
                self.load(fingerprint)
            except StoreError as exc:
                out.append((fingerprint, str(exc)))
        return out
