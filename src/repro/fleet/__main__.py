"""The fleet CLI: ``python -m repro.fleet run|list|workloads``.

``run`` expands a catalog (a JSON matrix file or a built-in name) into
experiment specs and fans them out over a worker pool, serving unchanged
specs from the run store as cache hits::

    python -m repro.fleet run --matrix smoke --workers 2
    python -m repro.fleet run --matrix experiments.json --workers 4 --store runs

``list`` prints the expanded specs and their fingerprints without
running anything; ``workloads`` prints the registered workloads and
named fault plans a catalog can reference.  Explore the accumulated
records with ``python -m repro.explore``.
"""

from __future__ import annotations

import argparse
import sys

from .catalog import BUILTIN_MATRICES, Catalog, load_catalog
from .runner import run_specs
from .store import RunStore
from .workloads import FAULT_PLANS, WORKLOADS


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet",
        description="Catalog-driven experiment fleet runner.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser(
        "run", help="run a catalog's specs (cache hits are free)"
    )
    run.add_argument(
        "--matrix", default=None, metavar="CATALOG",
        help="JSON catalog path or built-in matrix name "
        f"({', '.join(sorted(BUILTIN_MATRICES))})",
    )
    run.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (default: 1 = in-process serial)",
    )
    run.add_argument(
        "--store", default="runs", metavar="DIR",
        help="run-store root directory (default: runs)",
    )
    run.add_argument(
        "--force", action="store_true",
        help="re-run even on valid cached records",
    )
    run.add_argument(
        "--families", metavar="FILE", default=None,
        help="also ingest a `python -m repro.study --list` listing "
        "as study:<family> specs (use - for stdin, so the two CLIs "
        "compose as a pipe)",
    )
    run.add_argument(
        "--progress", action="store_true",
        help="print per-spec start/finish heartbeats with a fleet ETA "
        "to stderr (records are unaffected: they carry no wall clock)",
    )

    lst = commands.add_parser(
        "list", help="expand a catalog and print specs + fingerprints"
    )
    lst.add_argument("--matrix", default=None, metavar="CATALOG")
    lst.add_argument("--families", metavar="FILE", default=None)

    commands.add_parser(
        "workloads", help="print registered workloads and fault plans"
    )
    return parser


def _catalog(args) -> Catalog:
    families = getattr(args, "families", None)
    if args.matrix is None and not families:
        raise SystemExit("need --matrix CATALOG and/or --families FILE")
    specs = []
    name = "families"
    if args.matrix is not None:
        catalog = load_catalog(args.matrix)
        specs.extend(catalog.specs)
        name = catalog.name
    if families:
        if families == "-":
            listing = sys.stdin.read()
        else:
            with open(families, "r", encoding="utf-8") as fh:
                listing = fh.read()
        specs.extend(Catalog.from_family_listing(listing))
    return Catalog(name=name, specs=specs)


def _cmd_run(args) -> int:
    catalog = _catalog(args)
    store = RunStore(args.store)
    progress = None
    if args.progress:
        from ..obs.progress import FleetTicker

        unique = len({spec.fingerprint for spec in catalog.specs})
        progress = FleetTicker(total=unique)
    outcomes = run_specs(
        catalog.specs,
        store,
        workers=max(1, args.workers),
        force=args.force,
        log=print,
        progress=progress,
    )
    hits = sum(1 for outcome in outcomes if outcome.cached)
    errors = [outcome for outcome in outcomes if outcome.status == "error"]
    print(
        f"\n{catalog.name}: {len(outcomes)} spec(s), "
        f"cache hits: {hits}/{len(outcomes)} "
        f"({100.0 * hits / len(outcomes):.0f}%), "
        f"executed: {len(outcomes) - hits - len(errors)}, "
        f"errors: {len(errors)}"
    )
    for outcome in errors:
        print(f"\n{outcome.fingerprint} failed:\n{outcome.error}",
              file=sys.stderr)
    print(f"store: {store.root}")
    return 1 if errors else 0


def _cmd_list(args) -> int:
    catalog = _catalog(args)
    for spec in catalog:
        print(f"{spec.fingerprint}  {spec.describe()}")
    print(f"\n{catalog.name}: {len(catalog)} spec(s)")
    return 0


def _cmd_workloads() -> int:
    print("workloads:")
    for name, workload in sorted(WORKLOADS.items()):
        print(f"  {name:<8}{workload.description}")
    print("  bench:<name>   any benchmark in repro.bench (see `python -m "
          "repro.bench run --help`)")
    print("  study:<family> any study family (see `python -m repro.study "
          "--list`)")
    print("\nfault plans:")
    for name, knobs in FAULT_PLANS.items():
        print(f"  {name:<10}{knobs if knobs is not None else 'perfect fabric'}")
    return 0


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "list":
        return _cmd_list(args)
    return _cmd_workloads()


if __name__ == "__main__":
    sys.exit(main())
