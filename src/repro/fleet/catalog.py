"""Declarative experiment catalogs: specs, fingerprints and matrices.

An :class:`ExperimentSpec` names one run of one fleet workload — which
workload, which platform profile, which named fault plan, how many nodes,
which seed, plus workload-specific knobs — as a frozen dataclass whose
:attr:`~ExperimentSpec.fingerprint` is a stable content hash of exactly
those fields.  The fingerprint is the identity of the run everywhere
downstream: the run store keys artifact directories by it, the runner
uses it for cache hits, and the explorer resolves prefixes of it.  Since
every run is deterministic, (fingerprint, code version) fully determines
the record bytes.

A :class:`Catalog` is a named list of specs.  The usual way to build one
is a **matrix** document — the cross product of axis lists::

    {
      "name": "coll-sweep",
      "matrix": {
        "workload": ["coll"],
        "params": [{"mode": "nx"}, {"mode": "tree-nic"}],
        "nodes": [8, 16],
        "fault_plan": ["none"],
        "seed": [1998]
      }
    }

``load_catalog`` accepts a path to such a JSON document or the name of a
built-in matrix (``smoke``, ``coll16``, ``scaling``).  Catalogs can also
ingest the machine-readable family listing of ``python -m repro.study
--list`` (:meth:`Catalog.from_family_listing`), which turns every study
family into a ``study:<family>`` spec.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = [
    "SPEC_SCHEMA",
    "ExperimentSpec",
    "make_spec",
    "Catalog",
    "expand_matrix",
    "load_catalog",
    "BUILTIN_MATRICES",
]

#: Versioned into every fingerprint: bump to invalidate all cached runs.
SPEC_SCHEMA = 1

#: JSON scalar types allowed as spec parameter values (content-hashable).
_SCALARS = (str, int, float, bool)


@dataclass(frozen=True)
class ExperimentSpec:
    """One cell of the experiment matrix (hashable, content-addressed)."""

    #: Fleet workload name: a registry entry (``coll``, ``ping``,
    #: ``serve``), ``bench:<name>`` for a curated benchmark, or
    #: ``study:<family>`` for a study-family report.
    workload: str
    #: Platform profile (``shrimp`` or ``myrinet``; see study.platforms).
    platform: str = "shrimp"
    #: Named fault plan (see :data:`repro.fleet.workloads.FAULT_PLANS`).
    fault_plan: str = "none"
    #: Mesh size for workloads that take one (ignored by ``bench:``).
    nodes: int = 16
    #: Master seed for the run.
    seed: int = 1998
    #: Workload knobs as sorted (key, scalar) pairs — use :func:`make_spec`.
    params: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self):
        for key, value in self.params:
            if not isinstance(key, str) or not isinstance(value, _SCALARS):
                raise ValueError(
                    f"spec params must map str -> JSON scalar, got "
                    f"{key!r}={value!r}"
                )
        if list(self.params) != sorted(self.params, key=lambda kv: kv[0]):
            raise ValueError("spec params must be sorted by key (use make_spec)")

    def param(self, key: str, default=None):
        for k, v in self.params:
            if k == key:
                return v
        return default

    def to_json(self) -> Dict:
        """The canonical JSON form (what the fingerprint hashes)."""
        return {
            "schema": SPEC_SCHEMA,
            "workload": self.workload,
            "platform": self.platform,
            "fault_plan": self.fault_plan,
            "nodes": self.nodes,
            "seed": self.seed,
            "params": dict(self.params),
        }

    @classmethod
    def from_json(cls, doc: Dict) -> "ExperimentSpec":
        schema = doc.get("schema", SPEC_SCHEMA)
        if schema != SPEC_SCHEMA:
            raise ValueError(f"unsupported spec schema {schema!r}")
        return make_spec(
            doc["workload"],
            platform=doc.get("platform", "shrimp"),
            fault_plan=doc.get("fault_plan", "none"),
            nodes=doc.get("nodes", 16),
            seed=doc.get("seed", 1998),
            **doc.get("params", {}),
        )

    @property
    def fingerprint(self) -> str:
        """Stable 64-bit content hash of the spec (16 hex chars).

        A pure function of :meth:`to_json` — field order, param order and
        float formatting are all canonicalized — so the same experiment
        always lands in the same ``runs/<fingerprint>/`` directory.
        """
        blob = json.dumps(self.to_json(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    def describe(self) -> str:
        """One-line human summary (workload plus distinguishing knobs)."""
        knobs = [f"{k}={v}" for k, v in self.params]
        if self.platform != "shrimp":
            knobs.append(f"platform={self.platform}")
        if self.fault_plan != "none":
            knobs.append(f"fault={self.fault_plan}")
        knobs.append(f"nodes={self.nodes}")
        knobs.append(f"seed={self.seed}")
        return f"{self.workload} " + " ".join(knobs)


def make_spec(
    workload: str,
    platform: str = "shrimp",
    fault_plan: str = "none",
    nodes: int = 16,
    seed: int = 1998,
    **params,
) -> ExperimentSpec:
    """Build a spec with params canonically sorted by key."""
    return ExperimentSpec(
        workload=workload,
        platform=platform,
        fault_plan=fault_plan,
        nodes=nodes,
        seed=seed,
        params=tuple(sorted(params.items())),
    )


@dataclass
class Catalog:
    """A named, ordered, duplicate-free list of experiment specs."""

    name: str
    specs: List[ExperimentSpec] = field(default_factory=list)

    def __post_init__(self):
        seen = set()
        unique = []
        for spec in self.specs:
            if spec.fingerprint not in seen:
                seen.add(spec.fingerprint)
                unique.append(spec)
        self.specs = unique

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    @classmethod
    def from_family_listing(
        cls, text: str, nodes: int = 16, seed: int = 1998
    ) -> "Catalog":
        """Ingest ``python -m repro.study --list`` output.

        Each non-empty line is ``name<TAB>description``; every family
        becomes a ``study:<name>`` spec, so the whole study registry can
        be fanned out by the fleet in one command.
        """
        specs = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            family = line.split("\t", 1)[0].strip()
            specs.append(
                make_spec(f"study:{family}", nodes=nodes, seed=seed)
            )
        return cls(name="study-families", specs=specs)


def _axis(matrix: Dict, key: str, default: list) -> list:
    value = matrix.get(key, default)
    if not isinstance(value, list):
        value = [value]
    if not value:
        raise ValueError(f"matrix axis {key!r} is empty")
    return value


def expand_matrix(doc: Dict) -> List[ExperimentSpec]:
    """Cross-product expansion of one matrix document."""
    matrix = doc.get("matrix")
    specs: List[ExperimentSpec] = []
    if matrix is not None:
        workloads = _axis(matrix, "workload", [])
        if not workloads:
            raise ValueError("matrix needs a 'workload' axis")
        platforms = _axis(matrix, "platform", ["shrimp"])
        fault_plans = _axis(matrix, "fault_plan", ["none"])
        nodes_axis = _axis(matrix, "nodes", [16])
        seeds = _axis(matrix, "seed", [1998])
        param_combos = _axis(matrix, "params", [{}])
        for workload, platform, fault_plan, nodes, seed, params in (
            itertools.product(
                workloads, platforms, fault_plans, nodes_axis, seeds,
                param_combos,
            )
        ):
            specs.append(
                make_spec(
                    workload,
                    platform=platform,
                    fault_plan=fault_plan,
                    nodes=nodes,
                    seed=seed,
                    **params,
                )
            )
    for spec_doc in doc.get("specs", ()):
        specs.append(ExperimentSpec.from_json({"schema": SPEC_SCHEMA, **spec_doc}))
    if not specs:
        raise ValueError("catalog document produced no specs")
    return specs


#: Built-in matrices, usable as ``--matrix <name>``.
BUILTIN_MATRICES: Dict[str, Dict] = {
    # The CI fleet-smoke matrix: host-dissemination vs NIC-resident
    # barriers at 8 and 16 nodes — 4 specs, and the 16-node pair is the
    # published cpu-share-collapse comparison.
    "smoke": {
        "name": "smoke",
        "matrix": {
            "workload": ["coll"],
            "params": [{"mode": "nx"}, {"mode": "tree-nic"}],
            "nodes": [8, 16],
        },
    },
    # All three collective placements at the paper scale.
    "coll16": {
        "name": "coll16",
        "matrix": {
            "workload": ["coll"],
            "params": [
                {"mode": "nx"}, {"mode": "tree-host"}, {"mode": "tree-nic"},
            ],
            "nodes": [16],
        },
    },
    # A scale trend for the explorer: NIC trees from 4 to 32 nodes.
    "scaling": {
        "name": "scaling",
        "matrix": {
            "workload": ["coll"],
            "params": [{"mode": "tree-nic"}],
            "nodes": [4, 8, 16, 32],
        },
    },
    # Large-mesh latency under the shard model, past the paper scale.
    # Virtual-time results only, so records regenerate byte-identically
    # regardless of how many workers executed them.
    "largemesh": {
        "name": "largemesh",
        "matrix": {
            "workload": ["shard"],
            "params": [{"pattern": "uniform"}, {"pattern": "transpose"}],
            "nodes": [64, 256],
        },
    },
}


def load_catalog(path_or_name: str) -> Catalog:
    """Load a catalog from a JSON file path or a built-in matrix name."""
    if os.path.exists(path_or_name):
        with open(path_or_name, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        name = doc.get("name") or os.path.splitext(
            os.path.basename(path_or_name)
        )[0]
    elif path_or_name in BUILTIN_MATRICES:
        doc = BUILTIN_MATRICES[path_or_name]
        name = doc["name"]
    else:
        raise ValueError(
            f"no catalog file {path_or_name!r} and no built-in matrix of "
            f"that name; built-ins: {sorted(BUILTIN_MATRICES)}"
        )
    return Catalog(name=name, specs=expand_matrix(doc))
