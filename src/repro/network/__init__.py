"""The Paragon-style 2-D mesh backplane model."""

from .backplane import Backplane
from .packet import Packet, PacketKind
from .topology import LinkId, MeshTopology

__all__ = ["Backplane", "Packet", "PacketKind", "MeshTopology", "LinkId"]
