"""2-D mesh topology with oblivious XY (dimension-ordered) routing.

The Intel Paragon backplane used by SHRIMP is a two-dimensional mesh with
oblivious wormhole routing.  XY routing sends a packet fully along the X
dimension, then along Y; it is deterministic (all packets between a given
source/destination pair take the same path) and deadlock-free, which the
link-holding transmission model in :mod:`repro.network.backplane` relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = ["MeshTopology", "LinkId"]

#: A directed link identified by (from_node, to_node).
LinkId = Tuple[int, int]


@dataclass(frozen=True)
class MeshTopology:
    """A width x height mesh of nodes numbered row-major from 0.

    ``xy_route`` and ``hop_count`` are memoized per (src, dst) pair — at
    most ``num_nodes**2`` entries (256 on the 16-node mesh), computed on
    first use.  Cached routes are returned by reference: treat them as
    immutable.
    """

    width: int
    height: int

    def __post_init__(self):
        if self.width < 1 or self.height < 1:
            raise ValueError("mesh dimensions must be positive")
        # Per-instance memo tables (the dataclass is frozen, so they are
        # attached via object.__setattr__; they hold derived values only
        # and do not participate in eq/hash).
        object.__setattr__(self, "_route_cache", {})
        object.__setattr__(self, "_hop_cache", {})

    @property
    def num_nodes(self) -> int:
        return self.width * self.height

    def coords(self, node: int) -> Tuple[int, int]:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} outside mesh of {self.num_nodes}")
        return node % self.width, node // self.width

    def node_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"coordinates ({x}, {y}) outside mesh")
        return y * self.width + x

    def neighbors(self, node: int) -> List[int]:
        x, y = self.coords(node)
        out = []
        if x > 0:
            out.append(self.node_at(x - 1, y))
        if x < self.width - 1:
            out.append(self.node_at(x + 1, y))
        if y > 0:
            out.append(self.node_at(x, y - 1))
        if y < self.height - 1:
            out.append(self.node_at(x, y + 1))
        return out

    def links(self) -> List[LinkId]:
        """Every directed link in the mesh."""
        out: List[LinkId] = []
        for node in range(self.num_nodes):
            for nbr in self.neighbors(node):
                out.append((node, nbr))
        return out

    def xy_route(self, src: int, dst: int) -> List[LinkId]:
        """The sequence of directed links from src to dst under XY routing.

        Empty when src == dst (a node talking to itself never enters the
        backplane).  Memoized: repeated calls return the same list object —
        do not mutate it.
        """
        cached = self._route_cache.get((src, dst))
        if cached is not None:
            return cached
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        path: List[LinkId] = []
        x, y = sx, sy
        while x != dx:
            nx = x + (1 if dx > x else -1)
            path.append((self.node_at(x, y), self.node_at(nx, y)))
            x = nx
        while y != dy:
            ny = y + (1 if dy > y else -1)
            path.append((self.node_at(x, y), self.node_at(x, ny)))
            y = ny
        self._route_cache[(src, dst)] = path
        return path

    def hop_count(self, src: int, dst: int) -> int:
        cached = self._hop_cache.get((src, dst))
        if cached is not None:
            return cached
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        hops = abs(sx - dx) + abs(sy - dy)
        self._hop_cache[(src, dst)] = hops
        return hops
