"""2-D mesh topology with oblivious XY (dimension-ordered) routing.

The Intel Paragon backplane used by SHRIMP is a two-dimensional mesh with
oblivious wormhole routing.  XY routing sends a packet fully along the X
dimension, then along Y; it is deterministic (all packets between a given
source/destination pair take the same path) and deadlock-free, which the
link-holding transmission model in :mod:`repro.network.backplane` relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = ["MeshTopology", "LinkId", "route_cache_cap"]

#: A directed link identified by (from_node, to_node).
LinkId = Tuple[int, int]


def route_cache_cap(num_nodes: int) -> int:
    """Route-memo entry budget for a mesh of ``num_nodes``.

    All ``num_nodes**2`` pairs on small meshes (256 entries at 16 nodes,
    exactly the historical eager table), a generous working set on large
    ones (32 routes per node, floor 4096) instead of the quadratic blowup
    that would hold a million paths at 1024 nodes.
    """
    return min(num_nodes * num_nodes, max(4096, 32 * num_nodes))


@dataclass(frozen=True)
class MeshTopology:
    """A width x height mesh of nodes numbered row-major from 0.

    Dimensions are arbitrary (non-square meshes included): a 64-node mesh
    may be 8x8 or 16x4, and routing treats both correctly.  ``xy_route``
    and ``hop_count`` are memoized per (src, dst) pair, computed on first
    use, under a cache cap that scales with the topology — all pairs fit
    on small meshes, while a 1024-node mesh keeps only its working set
    instead of a million route lists.  Cached routes are returned by
    reference: treat them as immutable.
    """

    width: int
    height: int

    def __post_init__(self):
        if self.width < 1 or self.height < 1:
            raise ValueError("mesh dimensions must be positive")
        # Per-instance memo tables (the dataclass is frozen, so they are
        # attached via object.__setattr__; they hold derived values only
        # and do not participate in eq/hash).
        object.__setattr__(self, "_route_cache", {})
        object.__setattr__(self, "_hop_cache", {})
        object.__setattr__(self, "_cache_cap", route_cache_cap(self.num_nodes))

    @property
    def num_nodes(self) -> int:
        return self.width * self.height

    def coords(self, node: int) -> Tuple[int, int]:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} outside mesh of {self.num_nodes}")
        return node % self.width, node // self.width

    def node_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"coordinates ({x}, {y}) outside mesh")
        return y * self.width + x

    def neighbors(self, node: int) -> List[int]:
        x, y = self.coords(node)
        out = []
        if x > 0:
            out.append(self.node_at(x - 1, y))
        if x < self.width - 1:
            out.append(self.node_at(x + 1, y))
        if y > 0:
            out.append(self.node_at(x, y - 1))
        if y < self.height - 1:
            out.append(self.node_at(x, y + 1))
        return out

    def links(self) -> List[LinkId]:
        """Every directed link in the mesh."""
        out: List[LinkId] = []
        for node in range(self.num_nodes):
            for nbr in self.neighbors(node):
                out.append((node, nbr))
        return out

    def next_hop(self, src: int, dst: int) -> int:
        """The first hop from ``src`` toward ``dst`` under XY routing.

        O(1) with no allocation — the per-hop primitive for simulations
        (like :mod:`repro.shard`) that route incrementally instead of
        materializing whole paths.  ``src == dst`` is an error: a delivered
        packet has no next hop.
        """
        if src == dst:
            raise ValueError("next_hop undefined for src == dst")
        width = self.width
        x, dx = src % width, dst % width
        if x != dx:
            return src + 1 if dx > x else src - 1
        return src + width if dst > src else src - width

    def xy_route(self, src: int, dst: int) -> List[LinkId]:
        """The sequence of directed links from src to dst under XY routing.

        Empty when src == dst (a node talking to itself never enters the
        backplane).  Memoized under the topology-scaled cache cap: repeated
        calls usually return the same list object — do not mutate it.
        """
        cached = self._route_cache.get((src, dst))
        if cached is not None:
            return cached
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        path: List[LinkId] = []
        x, y = sx, sy
        while x != dx:
            nx = x + (1 if dx > x else -1)
            path.append((self.node_at(x, y), self.node_at(nx, y)))
            x = nx
        while y != dy:
            ny = y + (1 if dy > y else -1)
            path.append((self.node_at(x, y), self.node_at(x, ny)))
            y = ny
        if len(self._route_cache) < self._cache_cap:
            self._route_cache[(src, dst)] = path
        return path

    def hop_count(self, src: int, dst: int) -> int:
        cached = self._hop_cache.get((src, dst))
        if cached is not None:
            return cached
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        hops = abs(sx - dx) + abs(sy - dy)
        if len(self._hop_cache) < self._cache_cap:
            self._hop_cache[(src, dst)] = hops
        return hops
