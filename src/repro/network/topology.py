"""2-D mesh topology with oblivious XY (dimension-ordered) routing.

The Intel Paragon backplane used by SHRIMP is a two-dimensional mesh with
oblivious wormhole routing.  XY routing sends a packet fully along the X
dimension, then along Y; it is deterministic (all packets between a given
source/destination pair take the same path) and deadlock-free, which the
link-holding transmission model in :mod:`repro.network.backplane` relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = ["MeshTopology", "LinkId"]

#: A directed link identified by (from_node, to_node).
LinkId = Tuple[int, int]


@dataclass(frozen=True)
class MeshTopology:
    """A width x height mesh of nodes numbered row-major from 0."""

    width: int
    height: int

    def __post_init__(self):
        if self.width < 1 or self.height < 1:
            raise ValueError("mesh dimensions must be positive")

    @property
    def num_nodes(self) -> int:
        return self.width * self.height

    def coords(self, node: int) -> Tuple[int, int]:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} outside mesh of {self.num_nodes}")
        return node % self.width, node // self.width

    def node_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"coordinates ({x}, {y}) outside mesh")
        return y * self.width + x

    def neighbors(self, node: int) -> List[int]:
        x, y = self.coords(node)
        out = []
        if x > 0:
            out.append(self.node_at(x - 1, y))
        if x < self.width - 1:
            out.append(self.node_at(x + 1, y))
        if y > 0:
            out.append(self.node_at(x, y - 1))
        if y < self.height - 1:
            out.append(self.node_at(x, y + 1))
        return out

    def links(self) -> List[LinkId]:
        """Every directed link in the mesh."""
        out: List[LinkId] = []
        for node in range(self.num_nodes):
            for nbr in self.neighbors(node):
                out.append((node, nbr))
        return out

    def xy_route(self, src: int, dst: int) -> List[LinkId]:
        """The sequence of directed links from src to dst under XY routing.

        Empty when src == dst (a node talking to itself never enters the
        backplane).
        """
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        path: List[LinkId] = []
        x, y = sx, sy
        while x != dx:
            nx = x + (1 if dx > x else -1)
            path.append((self.node_at(x, y), self.node_at(nx, y)))
            x = nx
        while y != dy:
            ny = y + (1 if dy > y else -1)
            path.append((self.node_at(x, y), self.node_at(x, ny)))
            y = ny
        return path

    def hop_count(self, src: int, dst: int) -> int:
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        return abs(sx - dx) + abs(sy - dy)
