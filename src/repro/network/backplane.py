"""The routing backplane: links, contention, and wormhole transmission.

Transmission model
------------------
True wormhole routing holds every channel on the path while the worm is in
flight and pipelines flits across hops, giving an unloaded latency of
roughly ``hops * hop_latency + size / link_bandwidth``.  The model here
reproduces both properties:

1. The sender acquires the path's links **in path order**, holding earlier
   links while waiting for later ones — exactly the channel-holding behavior
   that makes wormhole networks block back to the source under contention.
   XY routing's acyclic channel-dependency graph guarantees this cannot
   deadlock.
2. Once the whole path is held, the packet takes one pipelined latency of
   ``hops * router_hop_us + size / link_bandwidth``, then releases the path.

Delivery is in order between any source/destination pair (deterministic
routing + FIFO links + serialized injection at the source NIC), matching
the real backplane's ordering guarantee for a single sender.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional

from ..sim import Resource, Simulator, StatsRegistry, Timeout
from ..hardware import MachineParams
from .packet import Packet
from .topology import LinkId, MeshTopology

__all__ = ["Backplane"]


class Backplane:
    """The full mesh fabric connecting all NICs."""

    def __init__(
        self,
        sim: Simulator,
        params: MachineParams,
        stats: Optional[StatsRegistry] = None,
    ):
        self.sim = sim
        self.params = params
        self.stats = stats or StatsRegistry()
        self.topology = MeshTopology(params.mesh_width, params.mesh_height)
        self._links: Dict[LinkId, Resource] = {
            link: Resource(sim, capacity=1, name=f"link{link}")
            for link in self.topology.links()
        }
        # Per-destination ejection channel: the backplane-to-NIC hop that
        # serializes many-to-one traffic at the receiver.
        self._ejection: Dict[int, Resource] = {
            node: Resource(sim, capacity=1, name=f"eject{node}")
            for node in range(self.topology.num_nodes)
        }
        self._receivers: Dict[int, Callable[[Packet], None]] = {}
        self.packets_delivered = 0
        self.bytes_delivered = 0
        #: Installed by Machine.install_fault_plan; None means a perfect
        #: fabric and zero overhead (one predicate check per packet).
        self.fault_plan = None

    @property
    def num_nodes(self) -> int:
        return self.topology.num_nodes

    def attach_receiver(self, node: int, handler) -> None:
        """Register the NIC-side admit handler: a generator function taking
        the packet, which may block while the incoming FIFO is full."""
        self._receivers[node] = handler

    def link(self, link_id: LinkId) -> Resource:
        return self._links[link_id]

    # -- transmission ---------------------------------------------------

    def transmit(self, packet: Packet) -> Generator:
        """Carry ``packet`` to its destination; returns after delivery.

        Called from the sending NIC's injection process, so packets from one
        node are already serialized when they reach the fabric.  The worm
        holds its whole path while waiting for space in the destination
        NIC's incoming FIFO — wormhole backpressure: a slow receiver blocks
        senders all the way back through the mesh.
        """
        tel = self.stats.telemetry
        span = None
        if tel is not None:
            span = tel.begin(
                "net.transmit",
                packet.src,
                "net",
                parent=packet.span,
                dst=packet.dst,
                bytes=packet.size,
            )
            packet.span = span

        if packet.dst == packet.src:
            # Loopback never touches the backplane; charge a nominal
            # NIC-internal turnaround.
            yield Timeout(self.params.router_hop_us)
            yield from self._deliver(packet)
            if tel is not None:
                tel.end(span, hops=0)
            return

        path = self.topology.xy_route(packet.src, packet.dst)
        held: List[Resource] = []
        held_links: List[LinkId] = []
        try:
            for link_id in path:
                link = self._links[link_id]
                yield from link.acquire()
                held.append(link)
                held_links.append(link_id)
                if tel is not None:
                    tel.timeline(
                        f"link.{link_id[0]}-{link_id[1]}", node=link_id[0]
                    ).record(self.sim.now, 1)
            ejection = self._ejection[packet.dst]
            yield from ejection.acquire()
            held.append(ejection)

            latency = (
                len(path) * self.params.router_hop_us
                + packet.size / self.params.link_bandwidth
            )
            yield Timeout(latency)
            if self.fault_plan is not None and self._faulted(packet, path):
                return  # the worm vanished; held links release below
            yield from self._deliver(packet)
        finally:
            for link in held:
                link.release()
            if tel is not None:
                now = self.sim.now
                for link_id in held_links:
                    tel.timeline(
                        f"link.{link_id[0]}-{link_id[1]}", node=link_id[0]
                    ).record(now, 0)
                tel.end(span, hops=len(path))

    def _faulted(self, packet: Packet, path) -> bool:
        """Apply the installed fault plan to one transiting packet.

        Returns True when the packet is lost (crashed destination, link
        outage, or a drop fate).  A corrupt fate lets the packet through
        with ``corrupted`` set; the receiving NIC discards it after paying
        the receive-side costs, as a real CRC check would.
        """
        from ..faults import Fate

        plan = self.fault_plan
        now = self.sim.now
        if plan.crashed(packet.dst, now):
            self.stats.count("fault.crash_drops")
            self.stats.trace("fault.crash_drop", packet.dst, repr(packet))
            return True
        if plan.path_down(path, now):
            self.stats.count("fault.outage_drops")
            self.stats.trace("fault.outage_drop", packet.src, repr(packet))
            return True
        fate = plan.packet_fate(packet.src, packet.dst)
        if fate is Fate.DROP:
            self.stats.count("fault.drops")
            self.stats.trace("fault.drop", packet.src, repr(packet))
            return True
        if fate is Fate.CORRUPT:
            packet.corrupted = True
            self.stats.count("fault.corruptions")
            self.stats.trace("fault.corrupt", packet.src, repr(packet))
        return False

    def unloaded_latency(self, src: int, dst: int, size: int) -> float:
        """Contention-free wire latency for a packet of ``size`` bytes."""
        if src == dst:
            return self.params.router_hop_us
        hops = self.topology.hop_count(src, dst)
        return hops * self.params.router_hop_us + size / self.params.link_bandwidth

    def _deliver(self, packet: Packet) -> Generator:
        """Hand the packet to the destination NIC's admit path.

        The admit handler is a generator: it blocks while the NIC's
        incoming FIFO is full, which (because the caller still holds the
        worm's path) is what propagates backpressure into the mesh.
        """
        handler = self._receivers.get(packet.dst)
        if handler is None:
            raise RuntimeError(f"no receiver attached at node {packet.dst}")
        yield from handler(packet)
        self.packets_delivered += 1
        self.bytes_delivered += packet.size
        self.stats.count("net.packets")
        self.stats.count("net.bytes", packet.size)
