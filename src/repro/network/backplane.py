"""The routing backplane: links, contention, and wormhole transmission.

Transmission model
------------------
True wormhole routing holds every channel on the path while the worm is in
flight and pipelines flits across hops, giving an unloaded latency of
roughly ``hops * hop_latency + size / link_bandwidth``.  The model here
reproduces both properties:

1. The sender acquires the path's links **in path order**, holding earlier
   links while waiting for later ones — exactly the channel-holding behavior
   that makes wormhole networks block back to the source under contention.
   XY routing's acyclic channel-dependency graph guarantees this cannot
   deadlock.
2. Once the whole path is held, the packet takes one pipelined latency of
   ``hops * router_hop_us + size / link_bandwidth``, then releases the path.

Delivery is in order between any source/destination pair (deterministic
routing + FIFO links + serialized injection at the source NIC), matching
the real backplane's ordering guarantee for a single sender.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional, Tuple

from ..sim import Resource, Simulator, StatsRegistry, Timeout
from ..faults import Fate
from ..hardware import MachineParams
from .packet import Packet
from .topology import LinkId, MeshTopology, route_cache_cap

__all__ = ["Backplane"]


class Backplane:
    """The full mesh fabric connecting all NICs."""

    def __init__(
        self,
        sim: Simulator,
        params: MachineParams,
        stats: Optional[StatsRegistry] = None,
    ):
        self.sim = sim
        self.params = params
        self.stats = stats or StatsRegistry()
        self.topology = MeshTopology(params.mesh_width, params.mesh_height)
        self._links: Dict[LinkId, Resource] = {
            link: Resource(sim, capacity=1, name=f"link{link}")
            for link in self.topology.links()
        }
        # Per-destination ejection channel: the backplane-to-NIC hop that
        # serializes many-to-one traffic at the receiver.
        self._ejection: Dict[int, Resource] = {
            node: Resource(sim, capacity=1, name=f"eject{node}")
            for node in range(self.topology.num_nodes)
        }
        self._receivers: List[Optional[Callable]] = [None] * self.topology.num_nodes
        self._link_bandwidth = params.link_bandwidth
        self.packets_delivered = 0
        self.bytes_delivered = 0
        #: Installed by Machine.install_fault_plan; None means a perfect
        #: fabric and zero overhead (one predicate check per packet).
        self.fault_plan = None
        # Hot-path handle caches.  Routes are memoized on first use: one
        # dict lookup per packet yields the link-id path *and* the Resource
        # objects to hold, replacing per-hop dict lookups and per-packet XY
        # recomputation.  The entry budget scales with the topology (all
        # pairs at 16 nodes — the historical eager table — a bounded
        # working set at 1024, where all-pairs would mean ~1M paths built
        # up front for traffic that may touch a fraction of them).
        self._routes: Dict[
            Tuple[int, int],
            Tuple[List[LinkId], Tuple[Resource, ...], Resource, float],
        ] = {}
        self._route_cap = route_cache_cap(self.topology.num_nodes)
        # Stat counters are bound lazily on first use (binding them here
        # would make them appear, zero-valued, in snapshots of runs that
        # never touch the network) and cached for every later packet.
        self._net_packets = None
        self._net_bytes = None
        # Per-link telemetry Timeline handles, keyed by the collector that
        # produced them so a newly installed collector invalidates the lot.
        self._link_timelines: Dict[LinkId, object] = {}
        self._timelines_owner = None

    @property
    def num_nodes(self) -> int:
        return self.topology.num_nodes

    def attach_receiver(self, node: int, handler) -> None:
        """Register the NIC-side admit handler: a generator function taking
        the packet, which may block while the incoming FIFO is full."""
        self._receivers[node] = handler

    def link(self, link_id: LinkId) -> Resource:
        return self._links[link_id]

    def _route_for(
        self, src: int, dst: int
    ) -> Tuple[List[LinkId], Tuple[Resource, ...], Resource, float]:
        """The memoized (path, link handles, ejection, base latency) tuple."""
        key = (src, dst)
        route = self._routes.get(key)
        if route is None:
            path = self.topology.xy_route(src, dst)
            route = (
                path,
                tuple(self._links[link_id] for link_id in path),
                self._ejection[dst],
                len(path) * self.params.router_hop_us,
            )
            if len(self._routes) < self._route_cap:
                self._routes[key] = route
        return route

    def _link_timeline(self, tel, link_id: LinkId):
        """The cached utilization Timeline for one link."""
        if tel is not self._timelines_owner:
            self._link_timelines.clear()
            self._timelines_owner = tel
        timeline = self._link_timelines.get(link_id)
        if timeline is None:
            timeline = tel.timeline(
                f"link.{link_id[0]}-{link_id[1]}", node=link_id[0]
            )
            self._link_timelines[link_id] = timeline
        return timeline

    # -- transmission ---------------------------------------------------

    def transmit(self, packet: Packet) -> Generator:
        """Carry ``packet`` to its destination; returns after delivery.

        Called from the sending NIC's injection process, so packets from one
        node are already serialized when they reach the fabric.  The worm
        holds its whole path while waiting for space in the destination
        NIC's incoming FIFO — wormhole backpressure: a slow receiver blocks
        senders all the way back through the mesh.
        """
        tel = self.stats.telemetry
        span = None
        if tel is not None:
            span = tel.begin(
                "net.transmit",
                packet.src,
                "net",
                parent=packet.span,
                dst=packet.dst,
                bytes=packet.size,
            )
            packet.span = span

        if packet.dst == packet.src:
            # Loopback never touches the backplane; charge a nominal
            # NIC-internal turnaround.
            yield self.params.router_hop_us
            yield from self._deliver(packet)
            if tel is not None:
                tel.end(span, hops=0)
            return

        path, links, ejection, base_latency = self._route_for(packet.src, packet.dst)
        if tel is None:
            # Hot path: no per-link timeline bookkeeping when telemetry is
            # off — acquisition order and timing are identical either way,
            # and the held set is tracked by count instead of a list.
            acquired = 0
            ejection_held = False
            try:
                for link in links:
                    if not link.try_acquire():
                        yield from link._acquire_wait()
                    acquired += 1
                if not ejection.try_acquire():
                    yield from ejection._acquire_wait()
                ejection_held = True
                yield base_latency + packet.size / self._link_bandwidth
                if self.fault_plan is not None and self._faulted(packet, path):
                    return  # the worm vanished; held links release below
                yield from self._deliver(packet)
            finally:
                if ejection_held:
                    for link in links:
                        link.release()
                    ejection.release()
                else:
                    for index in range(acquired):
                        links[index].release()
            return

        held: List[Resource] = []
        held_links: List[LinkId] = []
        try:
            for index, link in enumerate(links):
                yield from link.acquire()
                held.append(link)
                link_id = path[index]
                held_links.append(link_id)
                self._link_timeline(tel, link_id).record(self.sim.now, 1)
            yield from ejection.acquire()
            held.append(ejection)

            latency = base_latency + packet.size / self._link_bandwidth
            yield latency
            if self.fault_plan is not None and self._faulted(packet, path):
                return  # the worm vanished; held links release below
            yield from self._deliver(packet)
        finally:
            for link in held:
                link.release()
            now = self.sim.now
            for link_id in held_links:
                self._link_timeline(tel, link_id).record(now, 0)
            tel.end(span, hops=len(path))

    def _faulted(self, packet: Packet, path) -> bool:
        """Apply the installed fault plan to one transiting packet.

        Returns True when the packet is lost (crashed destination, link
        outage, or a drop fate).  A corrupt fate lets the packet through
        with ``corrupted`` set; the receiving NIC discards it after paying
        the receive-side costs, as a real CRC check would.
        """
        plan = self.fault_plan
        now = self.sim.now
        if plan.crashed(packet.dst, now):
            self.stats.count("fault.crash_drops")
            self.stats.trace("fault.crash_drop", packet.dst, repr(packet))
            return True
        if plan.path_down(path, now):
            self.stats.count("fault.outage_drops")
            self.stats.trace("fault.outage_drop", packet.src, repr(packet))
            return True
        fate = plan.packet_fate(packet.src, packet.dst)
        if fate is Fate.DROP:
            self.stats.count("fault.drops")
            self.stats.trace("fault.drop", packet.src, repr(packet))
            return True
        if fate is Fate.CORRUPT:
            packet.corrupted = True
            self.stats.count("fault.corruptions")
            self.stats.trace("fault.corrupt", packet.src, repr(packet))
        return False

    def unloaded_latency(self, src: int, dst: int, size: int) -> float:
        """Contention-free wire latency for a packet of ``size`` bytes."""
        if src == dst:
            return self.params.router_hop_us
        hops = self.topology.hop_count(src, dst)
        return hops * self.params.router_hop_us + size / self.params.link_bandwidth

    def _deliver(self, packet: Packet) -> Generator:
        """Hand the packet to the destination NIC's admit path.

        The admit handler is a generator: it blocks while the NIC's
        incoming FIFO is full, which (because the caller still holds the
        worm's path) is what propagates backpressure into the mesh.
        """
        handler = self._receivers[packet.dst]
        if handler is None:
            raise RuntimeError(f"no receiver attached at node {packet.dst}")
        yield from handler(packet)
        size = packet.size
        self.packets_delivered += 1
        self.bytes_delivered += size
        packets_counter = self._net_packets
        if packets_counter is None:
            packets_counter = self._net_packets = self.stats.counter("net.packets")
            self._net_bytes = self.stats.counter("net.bytes")
        packets_counter.add(1)
        self._net_bytes.add(size)
