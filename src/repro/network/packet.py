"""Network packets.

SHRIMP packets address **remote physical memory** directly: the sending
NIC's outgoing page table translates a local page to a (destination node,
remote page frame) pair, so a packet carries the frame and byte offset it
should be DMA'd to, plus an interrupt-request bit controlled by the sender
(paper section 2.3).
"""

from __future__ import annotations

import enum
from dataclasses import field

from .._compat import slotted_dataclass
from typing import Optional

from ..sim.ids import RunScopedCounter

__all__ = ["PacketKind", "Packet"]

#: Debug numbering only, but it reaches telemetry via ``repr`` — run-scoped
#: so same-seed runs in one process stay identical (see repro.sim.ids).
_packet_ids = RunScopedCounter()


class PacketKind(enum.Enum):
    AUTOMATIC_UPDATE = "au"
    DELIBERATE_UPDATE = "du"
    #: Endpoint-level control traffic (acks of the reliable-delivery mode).
    #: Carried like data on the wire but never written to memory.
    CONTROL = "ctl"
    #: In-network collective traffic (repro.coll): consumed by the NIC's
    #: collective engine — never DMA'd into host memory and never eligible
    #: for notification interrupts.  Carried like data on the wire, so
    #: collective protocols contend for the same links as everything else.
    COLLECTIVE = "coll"


@slotted_dataclass
class Packet:
    """One wire transfer: header(s) plus a contiguous data payload.

    ``fragments`` supports the *uncombined* automatic-update mode, where
    every individual store becomes its own packet: a burst of N consecutive
    word-packets is carried as one ``Packet`` with ``fragments=N``, paying N
    headers on the wire and N per-packet costs at the receiver, but costing
    O(1) simulation events.  Combined AU and deliberate-update packets have
    ``fragments=1``.

    ``last_of_message`` marks the final packet of a library-level message,
    which is the granularity at which the "interrupt on every arriving
    message" what-if (Table 4) fires.
    """

    src: int
    dst: int
    dst_frame: int
    offset: int
    payload: bytes
    kind: PacketKind
    interrupt: bool = False
    fragments: int = 1
    last_of_message: bool = True
    header_bytes: int = 8
    #: Reliable-delivery channel id (None for untagged traffic).
    channel: Optional[int] = None
    #: Sequence number within the channel; for CONTROL packets this is the
    #: cumulative acknowledgment.
    seq: int = 0
    #: Set by an installed FaultPlan: the payload arrives with a failing
    #: CRC and the receiving NIC discards it.
    corrupted: bool = False
    #: Telemetry span context carried across layers (None when telemetry is
    #: off): each hop parents its span to this and overwrites it with its
    #: own, so the receive side links back to the transmit side.
    span: Optional[int] = None
    #: Telemetry only: virtual time the packet was admitted into the
    #: destination's incoming FIFO, so the receive span can report how long
    #: it sat queued before the incoming engine picked it up (RX-FIFO
    #: residency — an attribution input, never a simulation input).
    admitted_at: Optional[float] = None
    packet_id: int = field(default_factory=_packet_ids.__next__)
    #: Total wire size including every fragment header.  Precomputed at
    #: construction: ``payload`` is immutable ``bytes`` and no field is
    #: ever rebound, and the hot paths read ``size`` several times per
    #: packet.
    size: int = field(init=False)

    def __post_init__(self):
        if not 0 <= self.offset:
            raise ValueError(f"negative packet offset {self.offset}")
        if len(self.payload) == 0:
            raise ValueError("packets must carry at least one byte of data")
        if self.fragments < 1:
            raise ValueError("fragments must be >= 1")
        self.size = self.header_bytes * self.fragments + len(self.payload)

    @property
    def data_bytes(self) -> int:
        return len(self.payload)

    def __repr__(self) -> str:
        flag = "+irq" if self.interrupt else ""
        if self.channel is not None:
            flag += f" ch{self.channel}:{self.seq}"
        frag = f" x{self.fragments}" if self.fragments > 1 else ""
        return (
            f"Packet#{self.packet_id}({self.kind.value}{flag}{frag} "
            f"{self.src}->{self.dst} frame={self.dst_frame}+{self.offset} "
            f"{len(self.payload)}B)"
        )
