"""User-level notifications (paper section 2.2, "Notifications").

A process that exports a buffer may enable notifications: message arrival
then causes a control transfer to a user-level handler, with semantics like
Unix signals — no delivery-time guarantee, no protection of the received
data from overwrite, but queueing of multiple notifications.  Processes can
block and unblock notifications globally (not per buffer).

The model runs each endpoint's handlers in a dedicated dispatcher process:
the kernel's system-level handler enqueues (buffer, packet) pairs and the
dispatcher invokes the registered user handler for each, in order.  Handler
functions may be plain callables or generator functions (which may consume
simulated time and communicate — the SVM protocols rely on this).
"""

from __future__ import annotations

import inspect
from typing import Callable, Generator, Optional, Tuple

from ..sim import Queue, Signal, Simulator, StatsRegistry
from ..network import Packet
from .buffers import ReceiveBuffer

__all__ = ["NotificationDispatcher"]

Handler = Callable[[ReceiveBuffer, Packet], Optional[Generator]]


class NotificationDispatcher:
    """Queues and dispatches notifications for one endpoint."""

    def __init__(self, sim: Simulator, node_id: int, pid: int, stats: StatsRegistry):
        self.sim = sim
        self.node_id = node_id
        self.pid = pid
        self.stats = stats
        self._queue: Queue = Queue(sim, f"notif{node_id}.{pid}")
        self._handler: Optional[Handler] = None
        self._blocked = False
        self._unblocked = Signal(sim, f"notif{node_id}.{pid}.unblock")
        self.delivered = 0
        self._process = None

    def set_handler(self, handler: Handler) -> None:
        self._handler = handler
        if self._process is None:
            self._process = self.sim.spawn(
                self._dispatch_loop(),
                f"notif-dispatch{self.node_id}.{self.pid}",
                daemon=True,
            )

    # -- kernel side --------------------------------------------------------

    def enqueue(self, buffer: ReceiveBuffer, packet: Packet) -> None:
        """Called from the kernel's system-level handler."""
        self.stats.count("vmmc.notifications")
        self._queue.put((buffer, packet))

    @property
    def pending(self) -> int:
        return len(self._queue)

    # -- user side ----------------------------------------------------------

    def block(self) -> None:
        """Suspend user-level delivery (notifications keep queueing)."""
        self._blocked = True

    def unblock(self) -> None:
        if self._blocked:
            self._blocked = False
            self._unblocked.fire()

    @property
    def blocked(self) -> bool:
        return self._blocked

    def _dispatch_loop(self) -> Generator:
        while True:
            buffer, packet = yield from self._queue.get()
            while self._blocked:
                yield from self._unblocked.wait()
            if self._handler is None:
                continue
            result = self._handler(buffer, packet)
            if inspect.isgenerator(result):
                yield from result
            self.delivered += 1
