"""The VMMC user-level library and runtime.

This is the thin user-level layer of paper section 2.3: it implements the
actual API of the communication model — export/import, deliberate-update
send, automatic-update bindings, notifications, and polling — on top of the
NIC model.  All higher-level libraries (NX, sockets, SVM) are built on the
:class:`VMMCEndpoint` API.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Set

from ..sim import Signal, Timeout
from ..hardware import PageMode, Protection
from ..network import Packet, PacketKind
from ..nic import OPTEntry, TransferRequest
from ..node import Machine, NodeProcess
from .buffers import ImportedBuffer, ReceiveBuffer
from .errors import BindingError, ImportError_, PermissionError_, VMMCError
from .notifications import Handler, NotificationDispatcher
from .reliable import (
    ReliableChannel,
    ReliableConfig,
    ReliableReceiverState,
    make_ack_packet,
)

__all__ = ["VMMCRuntime", "VMMCEndpoint", "AUBinding"]


class AUBinding:
    """An active automatic-update binding of local pages to a remote buffer."""

    def __init__(
        self,
        endpoint: "VMMCEndpoint",
        local_vaddr: int,
        npages: int,
        frames: List[int],
        imported: ImportedBuffer,
    ):
        self.endpoint = endpoint
        self.local_vaddr = local_vaddr
        self.npages = npages
        self.frames = frames
        self.imported = imported
        self.active = True


class _NodeState:
    """Per-node routing state kept by the runtime."""

    def __init__(self):
        self.frame_to_buffer: Dict[int, ReceiveBuffer] = {}
        self.endpoints: Dict[int, "VMMCEndpoint"] = {}
        #: Reliable-mode receiver state, by channel id.
        self.reliable_rx: Dict[int, ReliableReceiverState] = {}


class VMMCRuntime:
    """Machine-wide VMMC state: the export directory and delivery routing."""

    def __init__(self, machine: Machine):
        self.machine = machine
        machine.start()
        self.sim = machine.sim
        self.stats = machine.stats
        self.directory: Dict[str, ReceiveBuffer] = machine.registry("vmmc.exports")
        self._node_state: Dict[int, _NodeState] = {}
        #: Reliable-mode sender channels, by channel id (machine-wide:
        #: channel ids are globally unique).
        self._reliable_senders: Dict[int, ReliableChannel] = {}
        self._export_announced = Signal(self.sim, "vmmc.export")
        # Bound lazily on first counted message (hot delivery path).
        self._messages_received_counter = None
        for node in machine.nodes:
            state = _NodeState()
            self._node_state[node.node_id] = state
            node.nic.add_delivery_hook(
                lambda packet, nid=node.node_id: self._on_delivery(nid, packet)
            )
            node.kernel.on_notification = (
                lambda packet, nid=node.node_id: self._on_notification(nid, packet)
            )

    def endpoint(self, proc: NodeProcess) -> "VMMCEndpoint":
        state = self._node_state[proc.node_id]
        if proc.pid in state.endpoints:
            raise VMMCError(f"process {proc} already has a VMMC endpoint")
        endpoint = VMMCEndpoint(self, proc)
        state.endpoints[proc.pid] = endpoint
        return endpoint

    # -- delivery routing -------------------------------------------------

    def _buffer_for_frame(self, node_id: int, frame: int) -> Optional[ReceiveBuffer]:
        return self._node_state[node_id].frame_to_buffer.get(frame)

    def _on_delivery(self, node_id: int, packet: Packet) -> None:
        if packet.kind is PacketKind.CONTROL:
            self._on_ack_packet(packet)
            return
        tel = self.stats.telemetry
        if tel is not None and packet.last_of_message:
            tel.instant(
                "vmmc.deliver", node_id, "vmmc", parent=packet.span, src=packet.src
            )
        count_message = (
            packet.kind is PacketKind.DELIBERATE_UPDATE and packet.last_of_message
        )
        if packet.channel is not None:
            # Reliable-mode data: acknowledge, and suppress the byte and
            # message accounting for anything but the in-order packet so
            # retransmitted duplicates are not double counted.
            accepted = self._on_reliable_data(node_id, packet)
            if not accepted:
                return
            count_message = count_message and accepted
        buffer = self._buffer_for_frame(node_id, packet.dst_frame)
        if buffer is None:
            return  # delivery to memory outside any exported buffer
        buffer.bytes_received += packet.data_bytes
        if count_message:
            buffer.messages_received += 1
            counter = self._messages_received_counter
            if counter is None:
                counter = self._messages_received_counter = self.stats.counter(
                    "vmmc.messages_received"
                )
            counter.add(1)
        if buffer.arrival is not None:
            buffer.arrival.fire(packet)

    # -- reliable-delivery protocol hooks ---------------------------------

    def _register_reliable_sender(self, channel: ReliableChannel) -> None:
        self._reliable_senders[channel.channel_id] = channel

    def _on_ack_packet(self, packet: Packet) -> None:
        tel = self.stats.telemetry
        if tel is not None:
            tel.instant(
                "vmmc.ack", packet.dst, "vmmc", parent=packet.span, seq=packet.seq
            )
        sender = self._reliable_senders.get(packet.channel)
        if sender is not None:
            sender._on_ack(packet.seq)

    def _on_reliable_data(self, node_id: int, packet: Packet) -> bool:
        """Track in-order state and emit a cumulative ack; True = in order."""
        state = self._node_state[node_id].reliable_rx.get(packet.channel)
        if state is None:
            state = ReliableReceiverState(packet.channel, packet.src)
            self._node_state[node_id].reliable_rx[packet.channel] = state
        accepted = state.accept(packet.seq)
        if not accepted:
            if packet.seq < state.expected:
                self.stats.count("vmmc.rx_duplicates")
            else:
                self.stats.count("vmmc.rx_gaps")
                self.stats.trace(
                    "vmmc.retx",
                    node_id,
                    f"ch{packet.channel} gap: got seq{packet.seq}, "
                    f"expected {state.expected}",
                )
        sender = self._reliable_senders.get(packet.channel)
        ack_bytes = (
            sender.config.ack_bytes if sender is not None else ReliableConfig().ack_bytes
        )
        ack = make_ack_packet(node_id, state, ack_bytes)
        self.stats.count("vmmc.acks_sent")
        nic = self.machine.nodes[node_id].nic
        self.sim.spawn(nic.send_control(ack), f"ack.ch{packet.channel}")
        return accepted

    def _on_notification(self, node_id: int, packet: Packet) -> None:
        tel = self.stats.telemetry
        if tel is not None:
            tel.instant(
                "vmmc.notify", node_id, "vmmc", parent=packet.span, src=packet.src
            )
        buffer = self._buffer_for_frame(node_id, packet.dst_frame)
        if buffer is None:
            return
        state = self._node_state[node_id]
        endpoint = state.endpoints.get(buffer.owner_pid)
        if endpoint is not None:
            endpoint.dispatcher.enqueue(buffer, packet)

    # -- export directory ----------------------------------------------------

    def announce_export(self, buffer: ReceiveBuffer) -> None:
        self.directory[buffer.name] = buffer
        for frame in buffer.frames:
            self._node_state[buffer.owner_node].frame_to_buffer[frame] = buffer
        self._export_announced.fire(buffer.name)

    def withdraw_export(self, buffer: ReceiveBuffer) -> None:
        self.directory.pop(buffer.name, None)
        for frame in buffer.frames:
            self._node_state[buffer.owner_node].frame_to_buffer.pop(frame, None)

    def lookup_wait(self, name: str) -> Generator:
        """Block until a buffer named ``name`` has been exported."""
        while name not in self.directory:
            yield from self._export_announced.wait()
        return self.directory[name]


class VMMCEndpoint:
    """One process's handle on the VMMC library."""

    def __init__(self, runtime: VMMCRuntime, proc: NodeProcess):
        self.runtime = runtime
        self.proc = proc
        self.node = proc.node
        self.sim = runtime.sim
        self.stats = runtime.stats
        self.params = self.node.params
        self.dispatcher = NotificationDispatcher(
            self.sim, proc.node_id, proc.pid, self.stats
        )
        self.exports: List[ReceiveBuffer] = []
        self.imports: List[ImportedBuffer] = []
        self.bindings: List[AUBinding] = []
        # Hot-path counter handle, bound lazily on the first send.
        self._messages_counter = None

    @property
    def node_id(self) -> int:
        return self.proc.node_id

    @property
    def space(self):
        return self.proc.address_space

    # -- local memory helpers ------------------------------------------------

    def alloc(self, nbytes: int) -> int:
        """Allocate and map fresh local memory; returns the base vaddr."""
        npages = -(-nbytes // self.params.page_size)
        return self.space.alloc_region(npages)

    def poke(self, vaddr: int, data: bytes) -> None:
        """Untimed local write (setup paths; not for measured data)."""
        self.space.write(vaddr, data)

    def peek(self, vaddr: int, nbytes: int) -> bytes:
        """Untimed local read."""
        return self.space.read(vaddr, nbytes)

    def copy_in(self, vaddr: int, data: bytes, category: str = "communication"):
        """Timed local write: charges memcpy cost."""
        yield from self.node.cpu.busy(
            len(data) / self.params.memcpy_bandwidth, category
        )
        self.space.write(vaddr, data)

    def copy_out(self, vaddr: int, nbytes: int, category: str = "communication"):
        """Timed local read: charges memcpy cost; returns the bytes."""
        yield from self.node.cpu.busy(nbytes / self.params.memcpy_bandwidth, category)
        return self.space.read(vaddr, nbytes)

    # -- export ----------------------------------------------------------------

    def export(
        self,
        nbytes: int,
        name: Optional[str] = None,
        allow_nodes: Optional[Set[int]] = None,
        enable_notifications: bool = False,
    ) -> Generator:
        """Export a fresh receive buffer of ``nbytes``; returns the buffer."""
        npages = -(-nbytes // self.params.page_size)
        base_vaddr = self.space.alloc_region(npages)
        base_vpage = base_vaddr // self.params.page_size
        frames = [self.space.entry(base_vpage + i).frame for i in range(npages)]
        # Export pins the buffer's virtual pages to physical pages.
        yield from self.node.kernel.pin_pages(npages)
        buffer = ReceiveBuffer(
            owner_node=self.node_id,
            owner_pid=self.proc.pid,
            base_vaddr=base_vaddr,
            nbytes=npages * self.params.page_size,
            frames=frames,
            name=name,
            allow_nodes=allow_nodes,
            notifications_enabled=enable_notifications,
        )
        buffer.arrival = Signal(self.sim, f"arrival.{buffer.name}")
        for frame in frames:
            self.node.nic.ipt.export_frame(
                frame,
                owner_pid=self.proc.pid,
                buffer_id=buffer.buffer_id,
                interrupt_enabled=enable_notifications,
            )
        self.runtime.announce_export(buffer)
        self.exports.append(buffer)
        self.stats.count("vmmc.exports")
        return buffer

    def unexport(self, buffer: ReceiveBuffer) -> None:
        buffer.exported = False
        for frame in buffer.frames:
            self.node.nic.ipt.unexport_frame(frame)
        self.runtime.withdraw_export(buffer)

    def set_notification_handler(self, handler: Handler) -> None:
        self.dispatcher.set_handler(handler)

    def block_notifications(self) -> None:
        self.dispatcher.block()

    def unblock_notifications(self) -> None:
        self.dispatcher.unblock()

    # -- import -------------------------------------------------------------

    def import_buffer(self, name: str) -> Generator:
        """Import the remote buffer exported under ``name`` (blocks until
        it exists); returns an :class:`ImportedBuffer` proxy."""
        remote = yield from self.runtime.lookup_wait(name)
        if not remote.importable_by(self.node_id):
            raise PermissionError_(
                f"node {self.node_id} may not import {remote.name!r}"
            )
        # Import allocates an OPT (proxy) entry per page of the buffer.
        proxy_ids = [
            self.node.nic.opt.alloc_proxy(
                remote.owner_node, frame, self.params.page_size
            )
            for frame in remote.frames
        ]
        yield from self.node.cpu.busy(
            self.params.syscall_us + 0.5 * len(proxy_ids), "overhead"
        )
        imported = ImportedBuffer(
            self.node_id, self.proc.pid, remote, proxy_ids, self.params.page_size
        )
        self.imports.append(imported)
        self.stats.count("vmmc.imports")
        return imported

    # -- reliable delivery -----------------------------------------------

    def open_reliable(
        self,
        imported: ImportedBuffer,
        config: Optional[ReliableConfig] = None,
    ) -> ReliableChannel:
        """Open a reliable-delivery channel over an imported buffer.

        Returns a :class:`~repro.vmmc.reliable.ReliableChannel` whose
        ``send``/``drain`` generators guarantee delivery over a lossy
        fabric (sequence numbers, cumulative acks, go-back-N retransmit)
        or raise :class:`~repro.vmmc.errors.DeliveryFailed` once the retry
        budget is exhausted.
        """
        if not imported.valid:
            raise VMMCError("open_reliable on an invalidated import")
        channel = ReliableChannel(self, imported, config)
        self.stats.count("vmmc.reliable.channels")
        return channel

    # -- deliberate update -----------------------------------------------

    def send(
        self,
        imported: ImportedBuffer,
        src_vaddr: int,
        nbytes: int,
        dst_offset: int = 0,
        interrupt: bool = False,
        sync: bool = True,
        sync_delivered: bool = False,
    ) -> Generator:
        """Deliberate-update transfer of local memory into a remote buffer.

        Issued as one or more user-level DMA transfers, each within a single
        local and remote page (the proxy-mapping protection scheme forbids
        page crossings — section 4.5.3).  Returns when the data has been
        read out of local memory (``sync=True``), when every packet has
        reached the remote NIC (``sync_delivered=True``), or right after
        initiation (neither).
        """
        if not imported.valid:
            raise VMMCError("send on an invalidated import")
        if nbytes <= 0:
            raise VMMCError("send of zero bytes")
        if dst_offset + nbytes > imported.nbytes:
            raise VMMCError("send overruns the remote buffer")
        messages_counter = self._messages_counter
        if messages_counter is None:
            messages_counter = self._messages_counter = self.stats.counter(
                "vmmc.messages_sent"
            )
        messages_counter.add(1)
        tel = self.stats.telemetry
        span = None
        if tel is not None:
            # Implicitly parented to the caller's innermost open span (e.g.
            # an nx.csend); each per-page transfer carries the span onward.
            span = tel.begin(
                "vmmc.send",
                self.node_id,
                "vmmc",
                bytes=nbytes,
                dst=imported.remote_node,
            )

        node = self.node
        nic = node.nic
        if not nic.config.user_level_dma:
            # What-if (Table 2): a system call before every message send.
            yield from node.kernel.syscall("communication")

        page_size = self.params.page_size
        udma_init_us = self.params.udma_init_us
        translate = self.space.translate
        proxy_lookup = nic.opt.proxy_lookup
        cpu_busy = node.cpu.busy
        requests: List[TransferRequest] = []
        sent = 0
        while sent < nbytes:
            src = src_vaddr + sent
            dst = dst_offset + sent
            chunk = min(
                nbytes - sent,
                page_size - (src % page_size),
                page_size - (dst % page_size),
            )
            src_phys = translate(src, Protection.READ)
            remote_page, remote_off = divmod(dst, page_size)
            proxy = proxy_lookup(imported.proxy_ids[remote_page])
            is_last = sent + chunk >= nbytes
            request = TransferRequest(
                src_phys=src_phys,
                nbytes=chunk,
                dst_node=proxy.dst_node,
                dst_frame=proxy.dst_frame,
                dst_offset=remote_off,
                interrupt=interrupt and is_last,
                last_of_message=is_last,
                span=span,
            )
            # Install only the completion event this call will wait on;
            # the DU engine triggers them when present.
            if sync_delivered:
                request.delivered = self.sim.event("du.delivered")
            elif sync:
                request.sent = self.sim.event("du.sent")
            # The two-instruction user-level initiation sequence.
            yield from cpu_busy(udma_init_us, "communication")
            yield from nic.initiate_du(request)
            requests.append(request)
            sent += chunk

        if sync_delivered:
            for request in requests:
                if not request.delivered.triggered:
                    yield request.delivered
        elif sync:
            for request in requests:
                if not request.sent.triggered:
                    yield request.sent
        if tel is not None:
            tel.end(span, transfers=len(requests))
        return requests

    # -- automatic update ----------------------------------------------------

    def bind_au(
        self,
        imported: ImportedBuffer,
        local_vaddr: int,
        npages: int,
        remote_page_index: int = 0,
        combine: bool = False,
        interrupt: bool = False,
    ) -> Generator:
        """Bind local pages for automatic update into a remote buffer.

        Bindings are page-aligned on both sides (implementation restriction,
        section 2.2).  Bound pages switch to write-through so stores appear
        on the bus for the snoop logic.
        """
        if not self.node.nic.config.automatic_update:
            raise BindingError("this NIC configuration has no automatic update")
        if local_vaddr % self.params.page_size != 0:
            raise BindingError("AU binding must be page-aligned locally")
        if remote_page_index + npages > imported.remote.npages:
            raise BindingError("AU binding overruns the remote buffer")
        base_vpage = local_vaddr // self.params.page_size
        frames = []
        for i in range(npages):
            entry = self.space.entry(base_vpage + i)
            if entry is None:
                raise BindingError(f"local page {base_vpage + i} not mapped")
            frames.append(entry.frame)
        for i, frame in enumerate(frames):
            remote_frame = imported.remote.frames[remote_page_index + i]
            self.node.nic.opt.bind_au(
                frame,
                OPTEntry(
                    dst_node=imported.remote_node,
                    dst_frame=remote_frame,
                    combine=combine,
                    interrupt=interrupt,
                ),
            )
            self.space.set_mode(base_vpage + i, PageMode.WRITE_THROUGH)
        yield from self.node.cpu.busy(0.5 * npages, "overhead")
        binding = AUBinding(self, local_vaddr, npages, frames, imported)
        self.bindings.append(binding)
        self.stats.count("vmmc.au_bindings")
        return binding

    def unbind_au(self, binding: AUBinding) -> None:
        if not binding.active:
            return
        base_vpage = binding.local_vaddr // self.params.page_size
        for i, frame in enumerate(binding.frames):
            self.node.nic.opt.unbind_au(frame)
            self.space.set_mode(base_vpage + i, PageMode.WRITE_BACK)
        binding.active = False

    def au_write(
        self, vaddr: int, data: bytes, category: str = "communication"
    ) -> Generator:
        """A run of consecutive stores to (possibly) AU-bound memory.

        Automatic-update traffic is *not* counted as messages: it is
        implicit memory traffic, which is how the paper's message counts
        (Table 3) treat it.
        """
        self.stats.count("vmmc.au_writes")
        yield from self.node.au_store_run(self.space, vaddr, data, category)

    def au_flush(self) -> Generator:
        """Force out any packet pending in the combining engine.

        Waits for in-flight posted stores first: their data has not yet
        reached the snoop logic, and flushing before it arrives would
        strand it in the combiner until the timer.
        """
        yield from self.node.wait_posted_drained()
        yield from self.node.cpu.busy(0.1, "communication")
        self.node.nic.combiner.flush()

    def au_drain(self) -> Generator:
        """Flush the combiner and wait until the outgoing FIFO has fully
        drained into the network.

        A deliberate-update message sent afterwards to the same destination
        is then guaranteed to arrive after all earlier automatic updates —
        the software ordering fence AURC needs at release time, since the
        hardware itself does not order DU against AU (section 4.2).
        """
        yield from self.au_flush()
        fifo = self.node.nic.fifo
        while fifo.fill_bytes > 0:
            yield from fifo.emptied.wait()

    # -- polling receive helpers -------------------------------------------

    def wait_messages(self, buffer: ReceiveBuffer, count: int) -> Generator:
        """Poll until ``buffer`` has received ``count`` total messages."""
        while buffer.messages_received < count:
            yield from buffer.arrival.wait()
            yield from self.node.cpu.busy(self.params.poll_us, "communication")

    def wait_bytes(self, buffer: ReceiveBuffer, count: int) -> Generator:
        """Poll until ``buffer`` has received ``count`` total bytes."""
        while buffer.bytes_received < count:
            yield from buffer.arrival.wait()
            yield from self.node.cpu.busy(self.params.poll_us, "communication")

    def read_buffer(self, buffer: ReceiveBuffer, offset: int, nbytes: int) -> bytes:
        """Untimed owner-side read of an exported buffer's contents."""
        if buffer.owner_pid != self.proc.pid or buffer.owner_node != self.node_id:
            raise VMMCError("read_buffer by non-owner")
        return self.space.read(buffer.base_vaddr + offset, nbytes)
