"""Receive buffers and their proxies.

A **receive buffer** is a variable-sized region of contiguous virtual memory
that its owner has exported; data can only be received into exported
buffers.  An importer obtains a **proxy receive buffer** — a local
representation of the remote buffer — through which it sends deliberate
updates or establishes automatic-update bindings (paper section 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from ..sim import Signal
from ..sim.ids import RunScopedCounter

__all__ = ["ReceiveBuffer", "ImportedBuffer"]

_buffer_ids = RunScopedCounter(1)


class ReceiveBuffer:
    """An exported region of the owner's virtual memory."""

    def __init__(
        self,
        owner_node: int,
        owner_pid: int,
        base_vaddr: int,
        nbytes: int,
        frames: List[int],
        name: Optional[str] = None,
        allow_nodes: Optional[Set[int]] = None,
        notifications_enabled: bool = False,
    ):
        self.buffer_id = next(_buffer_ids)
        self.owner_node = owner_node
        self.owner_pid = owner_pid
        self.base_vaddr = base_vaddr
        self.nbytes = nbytes
        self.frames = frames
        self.name = name or f"buffer-{self.buffer_id}"
        self.allow_nodes = allow_nodes  # None = any node may import
        self.notifications_enabled = notifications_enabled
        #: Fired on every delivered packet addressed to this buffer; the
        #: polling-based libraries (VMMC-native, sockets) wait on this.
        self.arrival: Optional[Signal] = None
        self.bytes_received = 0
        self.messages_received = 0
        self.exported = True

    @property
    def npages(self) -> int:
        return len(self.frames)

    def importable_by(self, node_id: int) -> bool:
        return self.exported and (self.allow_nodes is None or node_id in self.allow_nodes)

    def __repr__(self) -> str:
        return (
            f"ReceiveBuffer(#{self.buffer_id} {self.name!r} on node "
            f"{self.owner_node}, {self.nbytes}B)"
        )


class ImportedBuffer:
    """A proxy for a remote receive buffer, held by the importer."""

    def __init__(
        self,
        importer_node: int,
        importer_pid: int,
        remote: ReceiveBuffer,
        proxy_ids: List[int],
        page_size: int,
    ):
        self.importer_node = importer_node
        self.importer_pid = importer_pid
        self.remote = remote
        self.proxy_ids = proxy_ids  # one NIC proxy entry per remote page
        self.page_size = page_size
        self.valid = True

    @property
    def nbytes(self) -> int:
        return self.remote.nbytes

    @property
    def remote_node(self) -> int:
        return self.remote.owner_node

    def proxy_for_offset(self, offset: int) -> int:
        """The proxy-entry id covering byte ``offset`` of the buffer."""
        if not 0 <= offset < len(self.proxy_ids) * self.page_size:
            raise ValueError(f"offset {offset} outside imported buffer")
        return self.proxy_ids[offset // self.page_size]

    def __repr__(self) -> str:
        return (
            f"ImportedBuffer(node {self.importer_node} -> "
            f"{self.remote.name!r}@{self.remote.owner_node})"
        )
