"""VMMC error types."""

__all__ = [
    "VMMCError",
    "ImportError_",
    "PermissionError_",
    "BindingError",
    "DeliveryFailed",
]


class VMMCError(RuntimeError):
    """Base class for VMMC API misuse."""


class ImportError_(VMMCError):
    """Import failed: unknown buffer or permission denied."""


class PermissionError_(VMMCError):
    """The importing process lacks permission on the buffer."""


class BindingError(VMMCError):
    """Invalid automatic-update binding (alignment, overlap, size)."""


class DeliveryFailed(VMMCError):
    """Reliable delivery exhausted its retry budget.

    Carries enough context for the higher-level libraries (NX, sockets,
    SVM) to degrade gracefully instead of hanging: which channel failed,
    the first unacknowledged sequence number, and how many retransmission
    rounds were attempted.
    """

    def __init__(self, message: str, channel: int, first_unacked: int, retries: int):
        super().__init__(message)
        self.channel = channel
        self.first_unacked = first_unacked
        self.retries = retries
