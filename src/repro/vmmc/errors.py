"""VMMC error types."""

__all__ = ["VMMCError", "ImportError_", "PermissionError_", "BindingError"]


class VMMCError(RuntimeError):
    """Base class for VMMC API misuse."""


class ImportError_(VMMCError):
    """Import failed: unknown buffer or permission denied."""


class PermissionError_(VMMCError):
    """The importing process lacks permission on the buffer."""


class BindingError(VMMCError):
    """Invalid automatic-update binding (alignment, overlap, size)."""
