"""Virtual Memory-Mapped Communication (VMMC): the paper's core model."""

from .api import AUBinding, VMMCEndpoint, VMMCRuntime
from .buffers import ImportedBuffer, ReceiveBuffer
from .errors import (
    BindingError,
    DeliveryFailed,
    ImportError_,
    PermissionError_,
    VMMCError,
)
from .notifications import NotificationDispatcher
from .reliable import ReliableChannel, ReliableConfig

__all__ = [
    "VMMCRuntime",
    "VMMCEndpoint",
    "AUBinding",
    "ReceiveBuffer",
    "ImportedBuffer",
    "NotificationDispatcher",
    "ReliableChannel",
    "ReliableConfig",
    "VMMCError",
    "ImportError_",
    "PermissionError_",
    "BindingError",
    "DeliveryFailed",
]
