"""Virtual Memory-Mapped Communication (VMMC): the paper's core model."""

from .api import AUBinding, VMMCEndpoint, VMMCRuntime
from .buffers import ImportedBuffer, ReceiveBuffer
from .errors import BindingError, ImportError_, PermissionError_, VMMCError
from .notifications import NotificationDispatcher

__all__ = [
    "VMMCRuntime",
    "VMMCEndpoint",
    "AUBinding",
    "ReceiveBuffer",
    "ImportedBuffer",
    "NotificationDispatcher",
    "VMMCError",
    "ImportError_",
    "PermissionError_",
    "BindingError",
]
