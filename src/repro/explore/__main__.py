"""The explorer CLI: ``python -m repro.explore <command>``.

Commands (all take ``--store DIR``, default ``runs``):

* ``list`` — every stored record: fingerprint, spec knobs, sample count,
  median, monitor trips (invalid records are called out, never served);
* ``show REF`` — one record in full: spec, stats, attribution bars,
  monitor trips, artifact paths;
* ``compare BASE NEW`` — paired-bootstrap verdict between two records
  (or a record and a committed ``BENCH_*.json#benchmark`` entry), with
  ``--json`` for the machine-readable document;
* ``attr-diff BASE NEW`` — the attribution-shift table: which component
  the microseconds (and share points) moved to;
* ``trend --workload W --x nodes`` — median-vs-x textual figure over
  the store's history of one workload, with ``--json`` for the
  machine-readable series document;
* ``drill REF`` — resolve a record to its Chrome trace / postmortem /
  report sidecars on disk.

``REF`` is a fingerprint prefix (``3417``), a spec query
(``workload=coll,mode=tree-nic,nodes=16``), or a baseline reference
(``benchmarks/baseline/BENCH_seed.json#du_ping_word``).
"""

from __future__ import annotations

import argparse
import json
import sys

from ..bench.compare import comparison_to_json, render_comparison
from ..fleet.store import RunStore
from .core import (
    attr_diff,
    compare_refs,
    drill,
    list_table,
    show_record,
    trend_rows,
    trend_table,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.explore",
        description="Explore accumulated experiment records and baselines.",
    )
    parser.add_argument(
        "--store", default="runs", metavar="DIR",
        help="run-store root directory (default: runs)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list stored records")

    show = commands.add_parser("show", help="show one record in full")
    show.add_argument("ref", help="fingerprint prefix, spec query, or "
                      "BENCH_*.json#benchmark")

    compare = commands.add_parser(
        "compare", help="paired-bootstrap comparison of two references"
    )
    compare.add_argument("base", help="baseline reference")
    compare.add_argument("new", help="candidate reference")
    compare.add_argument(
        "--threshold", type=float, default=0.05,
        help="relative-change gate (default: 0.05 = 5%%)",
    )
    compare.add_argument(
        "--boot", type=int, default=2000,
        help="bootstrap resamples (default: 2000)",
    )
    compare.add_argument(
        "--json", default=None, metavar="FILE", dest="json_out",
        help="also write the comparison as machine-readable JSON",
    )

    diff = commands.add_parser(
        "attr-diff",
        help="attribution-shift table between two references",
    )
    diff.add_argument("base")
    diff.add_argument("new")

    trend = commands.add_parser(
        "trend", help="median-vs-x trend over one workload's records"
    )
    trend.add_argument("--workload", required=True)
    trend.add_argument(
        "--x", default="nodes",
        help="x axis: nodes, seed, platform, fault_plan, or a param key "
        "(default: nodes)",
    )
    trend.add_argument(
        "--filter", action="append", default=[], metavar="K=V",
        help="only records whose spec matches (repeatable)",
    )
    trend.add_argument(
        "--json", default=None, metavar="FILE", dest="json_out",
        help="also write the trend series as machine-readable JSON",
    )

    drill_cmd = commands.add_parser(
        "drill", help="resolve a record to its trace/postmortem artifacts"
    )
    drill_cmd.add_argument("ref")
    return parser


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    store = RunStore(args.store)
    try:
        if args.command == "list":
            print(list_table(store))
        elif args.command == "show":
            print(show_record(store, args.ref))
        elif args.command == "compare":
            comparison = compare_refs(
                store, args.base, args.new,
                threshold=args.threshold, n_boot=args.boot,
            )
            print(render_comparison(comparison))
            if args.json_out:
                from ..telemetry.export import ensure_parent_dir

                with open(
                    ensure_parent_dir(args.json_out), "w", encoding="utf-8"
                ) as fh:
                    json.dump(
                        comparison_to_json(comparison), fh,
                        indent=2, sort_keys=True,
                    )
                    fh.write("\n")
                print(f"\nwrote {args.json_out}")
        elif args.command == "attr-diff":
            print(attr_diff(store, args.base, args.new))
        elif args.command == "trend":
            filters = {}
            for clause in args.filter:
                key, _, value = clause.partition("=")
                if not value:
                    raise ValueError(f"bad --filter {clause!r} (want K=V)")
                filters[key] = value
            print(trend_table(store, args.workload, x=args.x, filters=filters))
            if args.json_out:
                from ..telemetry.export import ensure_parent_dir

                doc = trend_rows(
                    store, args.workload, x=args.x, filters=filters
                )
                with open(
                    ensure_parent_dir(args.json_out), "w", encoding="utf-8"
                ) as fh:
                    json.dump(doc, fh, indent=2, sort_keys=True)
                    fh.write("\n")
                print(f"\nwrote {args.json_out}")
        elif args.command == "drill":
            print(drill(store, args.ref))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
