"""repro.explore: the cross-run results explorer.

A CLI (and library) over the :mod:`repro.fleet` run store and the
committed ``BENCH_*`` baselines::

    python -m repro.explore list
    python -m repro.explore show 3417
    python -m repro.explore compare "workload=coll,mode=nx,nodes=16" \\
        "workload=coll,mode=tree-nic,nodes=16"
    python -m repro.explore attr-diff "workload=coll,mode=nx,nodes=16" \\
        "workload=coll,mode=tree-nic,nodes=16"
    python -m repro.explore trend --workload coll --x nodes
    python -m repro.explore drill 3417

Comparisons reuse the paired-bootstrap machinery of
:mod:`repro.bench.compare`; attribution diffs answer "where did the cpu
share go" between any two records purely from stored artifacts.
"""

from .core import (
    Resolved,
    attr_diff,
    compare_refs,
    drill,
    list_table,
    resolve,
    show_record,
    trend_table,
)

__all__ = [
    "Resolved",
    "resolve",
    "list_table",
    "show_record",
    "compare_refs",
    "attr_diff",
    "trend_table",
    "drill",
]
