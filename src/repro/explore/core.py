"""Cross-run exploration over the fleet store and committed baselines.

The resolver (:func:`resolve`) turns a command-line *reference* into a
``(label, name, bench-entry, record)`` tuple.  Three reference forms:

* a **fingerprint prefix** — ``3417`` matches the unique store record
  whose fingerprint starts with it;
* a **spec query** — ``workload=coll,mode=tree-nic,nodes=16`` matches
  the unique record whose spec fields and params satisfy every clause
  (so scripts never have to parse fingerprints out of listings);
* a **baseline reference** — ``benchmarks/baseline/BENCH_seed.json#du_ping_word``
  names one entry of a committed ``BENCH_*`` document (the ``#`` part
  may be omitted when the document holds exactly one benchmark).

Every comparison funnels through :func:`repro.bench.compare.compare_docs`
— records embed a ``BENCH``-schema entry, so stored runs and committed
baselines go down the *same* paired-bootstrap stats path.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..bench.compare import Comparison, compare_docs
from ..bench.core import SCHEMA_VERSION, load_bench
from ..fleet.catalog import ExperimentSpec
from ..fleet.store import RunStore, StoreError
from ..study.report import format_bars, format_series, format_table

__all__ = [
    "Resolved",
    "resolve",
    "list_table",
    "show_record",
    "compare_refs",
    "attr_diff",
    "trend_rows",
    "trend_table",
    "drill",
]


@dataclass
class Resolved:
    """One side of a comparison: where it came from and its stats entry."""

    label: str
    name: str  # benchmark-style name used for pairing
    entry: Dict  # BENCH-schema benchmarks entry
    record: Optional[Dict] = None  # present for store records
    fingerprint: Optional[str] = None


def _is_query(ref: str) -> bool:
    return "=" in ref


def _query_clauses(ref: str) -> Dict[str, str]:
    clauses = {}
    for part in ref.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(f"bad query clause {part!r} (want key=value)")
        key, value = part.split("=", 1)
        clauses[key.strip()] = value.strip()
    if not clauses:
        raise ValueError(f"empty query {ref!r}")
    return clauses


def _spec_value(spec: ExperimentSpec, key: str):
    if key in ("workload", "platform", "fault_plan", "nodes", "seed"):
        return getattr(spec, key)
    return spec.param(key)


def _matches(record: Dict, clauses: Dict[str, str]) -> bool:
    spec = ExperimentSpec.from_json(record["spec"])
    for key, want in clauses.items():
        have = _spec_value(spec, key)
        if have is None or str(have) != want:
            return False
    return True


def _record_resolved(fingerprint: str, record: Dict) -> Resolved:
    entry = record.get("bench")
    spec = ExperimentSpec.from_json(record["spec"])
    label = f"{spec.describe()} @{fingerprint[:8]}"
    return Resolved(
        label=label,
        name=record["workload"],
        entry=entry,
        record=record,
        fingerprint=fingerprint,
    )


def resolve(store: RunStore, ref: str) -> Resolved:
    """Resolve one reference against the store or a ``BENCH_*`` file."""
    if ref.endswith(".json") or ".json#" in ref:
        path, _, bench = ref.partition("#")
        doc = load_bench(path)
        benchmarks = doc["benchmarks"]
        if not bench:
            if len(benchmarks) != 1:
                raise ValueError(
                    f"{path} holds {len(benchmarks)} benchmarks; pick one "
                    f"with {path}#<name> (available: {sorted(benchmarks)})"
                )
            bench = next(iter(benchmarks))
        if bench not in benchmarks:
            raise ValueError(
                f"no benchmark {bench!r} in {path} "
                f"(available: {sorted(benchmarks)})"
            )
        return Resolved(
            label=f"{doc.get('label', '?')}:{bench}",
            name=bench,
            entry=benchmarks[bench],
        )
    if _is_query(ref):
        clauses = _query_clauses(ref)
        hits = [
            (fingerprint, record)
            for fingerprint, record in store.records()
            if _matches(record, clauses)
        ]
        if not hits:
            raise ValueError(f"no stored record matches {ref!r}")
        if len(hits) > 1:
            listing = ", ".join(fingerprint for fingerprint, _ in hits[:8])
            raise ValueError(
                f"{ref!r} is ambiguous: {len(hits)} records match "
                f"({listing}{'...' if len(hits) > 8 else ''})"
            )
        return _record_resolved(*hits[0])
    hits = [
        fingerprint
        for fingerprint in store.fingerprints()
        if fingerprint.startswith(ref)
    ]
    if not hits:
        raise ValueError(
            f"no stored record fingerprint starts with {ref!r} "
            f"(store: {store.root})"
        )
    if len(hits) > 1:
        raise ValueError(
            f"fingerprint prefix {ref!r} is ambiguous: {', '.join(hits)}"
        )
    return _record_resolved(hits[0], store.load(hits[0]))


# -- list ---------------------------------------------------------------


def list_table(store: RunStore) -> str:
    rows = []
    for fingerprint, record in store.records():
        spec = ExperimentSpec.from_json(record["spec"])
        entry = record.get("bench")
        monitor = record.get("monitor") or {}
        knobs = " ".join(f"{k}={v}" for k, v in spec.params)
        rows.append(
            [
                fingerprint,
                spec.workload,
                knobs or "-",
                spec.nodes,
                spec.fault_plan,
                spec.seed,
                len(entry["samples"]) if entry else 0,
                f"{entry['median']:.2f}" if entry else "-",
                record.get("unit", "?"),
                len(monitor.get("trips", [])),
            ]
        )
    invalid = store.invalid()
    if rows:
        table = format_table(
            f"Run store: {store.root} ({len(rows)} records)",
            ["fingerprint", "workload", "params", "nodes", "faults", "seed",
             "n", "median", "unit", "trips"],
            rows,
        )
    elif not invalid:
        return f"run store {store.root}: no records"
    else:
        table = f"run store {store.root}: no valid records"
    if invalid:
        lines = [table, ""]
        for fingerprint, reason in invalid:
            lines.append(f"INVALID {fingerprint}: {reason}")
        return "\n".join(lines)
    return table


# -- show ---------------------------------------------------------------


def show_record(store: RunStore, ref: str) -> str:
    resolved = resolve(store, ref)
    parts: List[str] = []
    if resolved.record is None:
        parts.append(f"Baseline entry: {resolved.label}")
    else:
        record = resolved.record
        parts.append(f"Record {resolved.fingerprint}: {resolved.label}")
        parts.append(
            "spec: " + json.dumps(record["spec"], sort_keys=True)
        )
        parts.append(f"code version: {record['code_version']}")
        if record.get("virtual_end_us"):
            parts.append(f"virtual end: {record['virtual_end_us']:.2f} us")
        if record.get("metrics"):
            parts.append(
                "metrics: "
                + ", ".join(
                    f"{key}={value:g}"
                    for key, value in sorted(record["metrics"].items())
                )
            )
        monitor = record.get("monitor")
        if monitor is not None:
            if monitor.get("healthy", True):
                parts.append("monitor: healthy")
            else:
                trips = monitor.get("trips", [])
                parts.append(f"monitor: {len(trips)} trip(s)")
                for trip in trips:
                    parts.append(
                        f"  [t={trip['time']:.1f}us] {trip['kind']} "
                        f"{trip['subject']}: {trip['detail']}"
                    )
        artifacts = record.get("artifacts", {})
        if artifacts:
            parts.append(
                "artifacts: "
                + ", ".join(
                    f"{kind}={store.artifact_path(record, kind)}"
                    for kind in sorted(artifacts)
                )
            )
    entry = resolved.entry
    if entry is None:
        parts.append("no samples (report-only record; see drill)")
    else:
        parts.append(
            f"samples: n={len(entry['samples'])} "
            f"median={entry['median']:.3f} mean={entry['mean']:.3f} "
            f"min={entry['min']:.3f} max={entry['max']:.3f} "
            f"p95={entry['p95']:.3f} {entry['unit']}"
        )
        if "attribution" in entry:
            parts.append(
                format_bars(
                    f"Critical-path attribution "
                    f"({entry.get('ops', 0)} ops, mean us/op)",
                    [
                        (component, value)
                        for component, value in entry["attribution"].items()
                        if value > 0.0
                    ],
                    unit="us",
                )
            )
    return "\n\n".join(parts)


# -- compare ------------------------------------------------------------


def _mini_doc(resolved: Resolved, name: str) -> Dict:
    if resolved.entry is None:
        raise ValueError(
            f"{resolved.label} has no samples (report-only record); "
            "nothing to compare"
        )
    return {
        "schema": SCHEMA_VERSION,
        "label": resolved.label,
        "benchmarks": {name: resolved.entry},
    }


def compare_refs(
    store: RunStore,
    base_ref: str,
    new_ref: str,
    threshold: float = 0.05,
    n_boot: int = 2000,
) -> Comparison:
    """Paired-bootstrap comparison of any two references."""
    base = resolve(store, base_ref)
    new = resolve(store, new_ref)
    name = base.name if base.name == new.name else f"{base.name}->{new.name}"
    return compare_docs(
        _mini_doc(new, name),
        _mini_doc(base, name),
        threshold=threshold,
        n_boot=n_boot,
    )


# -- attr-diff ----------------------------------------------------------


def attr_diff(store: RunStore, base_ref: str, new_ref: str) -> str:
    """Where did the time go between two runs, in us/op and share points."""
    base = resolve(store, base_ref)
    new = resolve(store, new_ref)
    for side in (base, new):
        if side.entry is None or "attribution" not in side.entry:
            raise ValueError(
                f"{side.label} carries no attribution vector; "
                "attr-diff needs records with critical-path attribution"
            )
    base_attr = base.entry["attribution"]
    new_attr = new.entry["attribution"]
    base_share = base.entry.get("attribution_share", {})
    new_share = new.entry.get("attribution_share", {})
    components = sorted(set(base_attr) | set(new_attr))
    rows = []
    movers: List[Tuple[float, str]] = []
    for component in components:
        b_us = base_attr.get(component, 0.0)
        n_us = new_attr.get(component, 0.0)
        b_pct = 100.0 * base_share.get(component, 0.0)
        n_pct = 100.0 * new_share.get(component, 0.0)
        if b_us == 0.0 and n_us == 0.0:
            continue
        rows.append(
            [
                component,
                f"{b_us:.3f}",
                f"{n_us:.3f}",
                f"{n_us - b_us:+.3f}",
                f"{b_pct:.1f}",
                f"{n_pct:.1f}",
                f"{n_pct - b_pct:+.1f}",
            ]
        )
        movers.append((abs(n_pct - b_pct), component))
    table = format_table(
        f"Attribution shift: {base.label} -> {new.label}",
        ["component", "base us/op", "new us/op", "d us/op",
         "base %", "new %", "d pp"],
        rows,
    )
    lines = [table]
    base_total = sum(base_attr.values())
    new_total = sum(new_attr.values())
    lines.append(
        f"total critical path: {base_total:.3f} -> {new_total:.3f} us/op "
        f"({'%+.1f' % (100.0 * (new_total - base_total) / base_total) if base_total else '?'}%)"
    )
    for _weight, component in sorted(movers, reverse=True)[:2]:
        b_pct = 100.0 * base_share.get(component, 0.0)
        n_pct = 100.0 * new_share.get(component, 0.0)
        lines.append(
            f"{component} share {b_pct:.1f}% -> {n_pct:.1f}% "
            f"({base_attr.get(component, 0.0):.3f} -> "
            f"{new_attr.get(component, 0.0):.3f} us/op)"
        )
    return "\n\n".join(lines)


# -- trend --------------------------------------------------------------

_SPEC_AXES = ("workload", "platform", "fault_plan", "nodes", "seed")


def trend_rows(
    store: RunStore,
    workload: str,
    x: str = "nodes",
    filters: Optional[Dict[str, str]] = None,
) -> Dict:
    """Median-vs-``x`` series for one workload, as a machine-readable doc.

    Every valid record of ``workload`` passing ``filters`` contributes a
    point; records are grouped into one series per distinct combination
    of the remaining knobs (params, platform, fault plan), which is how
    a ``mode=nx`` vs ``mode=tree-nic`` scaling sweep becomes two series
    of the same figure.  Returns ``{"workload", "x", "unit", "series":
    {label: [[x_value, median], ...]}}`` — the shape behind both the
    textual figure (:func:`trend_table`) and the HTML renderer's trend
    charts, and what ``repro.explore trend --json`` writes.
    """
    filters = filters or {}
    series: Dict[str, List[Tuple[object, float]]] = {}
    unit = "?"
    for _fingerprint, record in store.records():
        if record["workload"] != workload:
            continue
        if filters and not _matches(record, filters):
            continue
        entry = record.get("bench")
        if entry is None:
            continue
        spec = ExperimentSpec.from_json(record["spec"])
        x_value = _spec_value(spec, x)
        if x_value is None:
            continue
        unit = entry["unit"]
        knobs = [
            f"{key}={value}"
            for key, value in spec.params
            if key != x and key not in filters
        ]
        for axis in ("platform", "fault_plan", "seed"):
            value = getattr(spec, axis)
            defaults = {"platform": "shrimp", "fault_plan": "none",
                        "seed": 1998}
            if axis != x and axis not in filters and value != defaults[axis]:
                knobs.append(f"{axis}={value}")
        label = " ".join(knobs) or workload
        series.setdefault(label, []).append((x_value, entry["median"]))
    if not series:
        raise ValueError(
            f"no records of workload {workload!r} with samples match "
            f"{filters or '(no filters)'} in {store.root}"
        )
    for points in series.values():
        points.sort(key=lambda point: (str(point[0]), point[1]))
    return {
        "workload": workload,
        "x": x,
        "unit": unit,
        "series": {
            label: [[x_value, median] for x_value, median in points]
            for label, points in series.items()
        },
    }


def trend_table(
    store: RunStore,
    workload: str,
    x: str = "nodes",
    filters: Optional[Dict[str, str]] = None,
) -> str:
    """The textual figure over :func:`trend_rows` (same grouping rules)."""
    doc = trend_rows(store, workload, x=x, filters=filters)
    series = {
        label: [(x_value, median) for x_value, median in points]
        for label, points in doc["series"].items()
    }
    return format_series(
        f"Trend: {workload} median ({doc['unit']}) vs {x}", x, series
    )


# -- drill --------------------------------------------------------------


def drill(store: RunStore, ref: str) -> str:
    """Resolve a record to its on-disk evidence."""
    resolved = resolve(store, ref)
    if resolved.record is None:
        raise ValueError(
            f"{resolved.label} is a baseline entry, not a stored run; "
            "drill needs a record"
        )
    record = resolved.record
    lines = [f"Record {resolved.fingerprint}: {resolved.label}"]
    lines.append(f"record: {os.path.abspath(store.record_path(resolved.fingerprint))}")
    artifacts = record.get("artifacts", {})
    if not artifacts:
        lines.append("no sidecar artifacts")
    trace_path = store.artifact_path(record, "trace")
    if trace_path:
        with open(trace_path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        lines.append(
            f"trace: {trace_path} ({len(doc.get('traceEvents', []))} "
            "events; open in chrome://tracing or ui.perfetto.dev)"
        )
    postmortem_path = store.artifact_path(record, "postmortem")
    if postmortem_path:
        lines.append(f"postmortem: {postmortem_path}")
    report_path = store.artifact_path(record, "report")
    if report_path:
        with open(report_path, "r", encoding="utf-8") as fh:
            body = fh.read()
        lines.append(f"report: {report_path}")
        lines.append("")
        lines.append(body.rstrip("\n"))
    return "\n".join(lines)
