"""Deterministic fault plans.

A :class:`FaultPlan` is the single source of truth for every fault a run
injects: packet drops, packet corruption, transient link outages, receive-
FIFO overflow discards, and node stall/crash events.  All of it is derived
from a seed via :func:`repro.sim.rng.derive_seed`, so two runs with the same
seed and machine shape see the *identical* fault schedule — the property
that makes "reliable mode under 1% loss" a reproducible experiment rather
than a flaky one.

Two kinds of decision live here:

* **Per-packet fates** (drop / corrupt / deliver) are computed by hashing
  the packet's (source, destination, per-pair attempt number) into a
  uniform variate.  This makes the fate of the *n*-th packet on a channel a
  pure function of the seed, independent of how traffic on other channels
  interleaves with it.
* **Scheduled events** (link outage windows, node stall windows, crash
  times) are sampled once, when the plan is bound to a machine, from
  dedicated derived RNG streams.

Injection sites (:mod:`repro.network.backplane`,
:mod:`repro.nic.interface`) gate on ``plan is None`` exactly the way
``Tracer`` gates on ``enabled``: when no plan is installed the hot paths
pay one predicate check and nothing else, so a no-plan run is byte-for-byte
identical to a build without the subsystem.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..sim.rng import derive_seed, named_stream

__all__ = ["Fate", "FaultConfig", "FaultPlan"]

#: Scale factor turning a 64-bit hash into a uniform variate in [0, 1).
_U64 = float(2**64)


class Fate(enum.Enum):
    """What the fabric does to one packet."""

    DELIVER = "deliver"
    DROP = "drop"
    CORRUPT = "corrupt"


@dataclass(frozen=True)
class FaultConfig:
    """Knobs describing the fault environment of one run.

    Rates are per-packet probabilities; scheduled events are placed
    uniformly over ``[0, horizon_us)`` when the plan is bound to a machine.
    """

    #: Probability that a packet vanishes in the fabric.
    drop_rate: float = 0.0
    #: Probability that a packet arrives with a failing CRC (the receiving
    #: NIC discards it after paying the receive-side costs).
    corrupt_rate: float = 0.0
    #: Number of transient link outages to schedule across the mesh.
    link_outages: int = 0
    #: Duration of each link outage.
    outage_duration_us: float = 200.0
    #: Number of node stall windows (a stalled node's receive engine
    #: freezes for the window, as under an OS-level hiccup).
    node_stalls: int = 0
    #: Duration of each stall window.
    stall_duration_us: float = 100.0
    #: Time span over which scheduled events are placed.
    horizon_us: float = 100_000.0
    #: When True, a full receive FIFO discards arriving packets instead of
    #: exerting wormhole backpressure (the commodity-switch behavior).
    rx_overflow_discard: bool = False
    #: Explicit crash events: ((node_id, crash_time_us), ...).  A crashed
    #: node neither sends nor receives from its crash time onward.
    crash_times: Tuple[Tuple[int, float], ...] = ()

    def __post_init__(self):
        for name in ("drop_rate", "corrupt_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.drop_rate + self.corrupt_rate > 1.0:
            raise ValueError("drop_rate + corrupt_rate must not exceed 1")
        if self.link_outages < 0 or self.node_stalls < 0:
            raise ValueError("event counts must be non-negative")
        if self.horizon_us <= 0:
            raise ValueError("horizon_us must be positive")

    @property
    def any_faults(self) -> bool:
        return bool(
            self.drop_rate
            or self.corrupt_rate
            or self.link_outages
            or self.node_stalls
            or self.rx_overflow_discard
            or self.crash_times
        )


class FaultPlan:
    """A bound, deterministic schedule of faults for one run.

    Create with a config and a seed, then install via
    :meth:`repro.node.machine.Machine.install_fault_plan` (which calls
    :meth:`bind`).  All query methods are cheap enough for per-packet use.
    """

    def __init__(self, config: FaultConfig, seed: int):
        self.config = config
        self.seed = derive_seed(seed, "faults")
        #: Per-(src, dst) packet attempt counters for fate hashing.
        self._pair_counts: Dict[Tuple[int, int], int] = {}
        #: link -> sorted list of (start, end) outage windows.
        self.outages: Dict[Tuple[int, int], List[Tuple[float, float]]] = {}
        #: node -> sorted list of (start, end) stall windows.
        self.stalls: Dict[int, List[Tuple[float, float]]] = {}
        self.crashes: Dict[int, float] = dict(config.crash_times)
        self._bound = False

    # -- binding -----------------------------------------------------------

    def bind(self, machine) -> "FaultPlan":
        """Sample the scheduled events against ``machine``'s topology.

        Idempotent; deterministic given the same seed and machine shape.
        """
        if self._bound:
            return self
        self._bound = True
        topology = machine.backplane.topology
        cfg = self.config
        if cfg.link_outages:
            rng = named_stream(self.seed, "outages")
            links = sorted(topology.links())
            for _ in range(cfg.link_outages):
                link = rng.pick(links)
                start = rng.uniform(0.0, cfg.horizon_us)
                self.outages.setdefault(link, []).append(
                    (start, start + cfg.outage_duration_us)
                )
            for windows in self.outages.values():
                windows.sort()
        if cfg.node_stalls:
            rng = named_stream(self.seed, "stalls")
            for _ in range(cfg.node_stalls):
                node = rng.randrange(topology.num_nodes)
                start = rng.uniform(0.0, cfg.horizon_us)
                self.stalls.setdefault(node, []).append(
                    (start, start + cfg.stall_duration_us)
                )
            for windows in self.stalls.values():
                windows.sort()
        return self

    def schedule(self) -> dict:
        """The sampled event schedule, for inspection and determinism tests."""
        return {
            "outages": {link: list(w) for link, w in sorted(self.outages.items())},
            "stalls": {node: list(w) for node, w in sorted(self.stalls.items())},
            "crashes": dict(sorted(self.crashes.items())),
        }

    # -- per-packet fates --------------------------------------------------

    def packet_fate(self, src: int, dst: int) -> Fate:
        """Fate of the next packet on the (src, dst) channel.

        Advances the channel's attempt counter, so a retransmission of a
        dropped packet rolls a fresh (but still deterministic) variate.
        """
        cfg = self.config
        if not cfg.drop_rate and not cfg.corrupt_rate:
            return Fate.DELIVER
        n = self._pair_counts.get((src, dst), 0) + 1
        self._pair_counts[(src, dst)] = n
        u = derive_seed(self.seed, "fate", src, dst, n) / _U64
        if u < cfg.drop_rate:
            return Fate.DROP
        if u < cfg.drop_rate + cfg.corrupt_rate:
            return Fate.CORRUPT
        return Fate.DELIVER

    # -- scheduled-event queries -------------------------------------------

    def link_down(self, link: Tuple[int, int], now: float) -> bool:
        """Is the directed link inside one of its outage windows?"""
        for start, end in self.outages.get(link, ()):
            if start <= now < end:
                return True
            if start > now:
                break
        return False

    def path_down(self, path, now: float) -> bool:
        """Is any link of ``path`` down at ``now``?"""
        if not self.outages:
            return False
        return any(self.link_down(link, now) for link in path)

    def stall_until(self, node: int, now: float) -> float:
        """End of the stall window covering ``now`` at ``node`` (else 0)."""
        for start, end in self.stalls.get(node, ()):
            if start <= now < end:
                return end
            if start > now:
                break
        return 0.0

    def crashed(self, node: int, now: float) -> bool:
        """Has ``node`` crashed at or before ``now``?"""
        crash_at = self.crashes.get(node)
        return crash_at is not None and now >= crash_at

    def __repr__(self) -> str:
        return (
            f"FaultPlan(drop={self.config.drop_rate}, "
            f"corrupt={self.config.corrupt_rate}, "
            f"outages={self.config.link_outages}, "
            f"stalls={self.config.node_stalls}, "
            f"crashes={len(self.crashes)})"
        )
