"""Deterministic fault injection: what SHRIMP's reliable backplane hid.

The SHRIMP hardware gave VMMC an in-order, loss-free fabric; every design
choice in the paper leans on that.  This package supplies the opposite
assumption as a controlled, seed-derived experiment axis: install a
:class:`FaultPlan` on a machine and the backplane and NICs inject packet
drops, corruption, link outages, receive-FIFO overflow discards and node
stall/crash events — all reproducibly.  The reliable-delivery VMMC mode
(:mod:`repro.vmmc.reliable`) is the endpoint-level answer, mirroring how
VMMC's descendants survive commodity fabrics.
"""

from .plan import Fate, FaultConfig, FaultPlan

__all__ = ["Fate", "FaultConfig", "FaultPlan"]
