#!/usr/bin/env python
"""A sharded serving tier under bursty load and a mid-run link outage.

Builds a 4-shard / 2-aggregate KV tier on the reproduced machine: each
aggregate simulates thousands of open-loop clients (MMPP bursty arrivals,
Zipf-skewed keys), routes requests with power-of-two-choices, and carries
them to the shards over reliable VMMC channels.  Two seconds of virtual
time in, a chaos scenario cuts a mesh link for 4 ms; go-back-N
retransmission rides out the window, so the outage shows up as an
elevated p999 rather than failures.

The run is scored three ways:

* the SLO report — p50/p99/p999 per request class, goodput against the
  deadline, per-shard load balance;
* critical-path attribution of the ``serve.request`` spans — where
  request time actually goes (cpu vs link vs stall);
* the health monitor — trips recorded while the link was down.

Run::

    python examples/serving_tier.py
"""

from repro.monitor import MonitorConfig
from repro.serve import ServeCluster, ServeConfig, make_chaos
from repro.telemetry import critpath

OUTAGE_AT_US = 2_000.0
OUTAGE_DURATION_US = 4_000.0


def main() -> None:
    config = ServeConfig(
        num_shards=4,
        num_aggregates=2,
        balancer="p2c",
        arrivals="mmpp",
        offered_rps=50_000.0,
        duration_us=10_000.0,
        slo_timeout_us=1_500.0,
    )
    cluster = ServeCluster(config, seed=1998, telemetry=True)
    monitor = cluster.machine.enable_monitor(
        MonitorConfig(check_interval_us=250.0, retx_storm_rounds=3)
    )

    # Setup quiesces the cluster (exports, imports, channel handshakes);
    # the chaos window is pinned relative to the traffic start it returns.
    cluster.setup()
    chaos = make_chaos(
        "link-outage", at_us=OUTAGE_AT_US, duration_us=OUTAGE_DURATION_US
    )
    chaos.apply(cluster)
    print(chaos.describe(cluster))
    print()

    report = cluster.run()
    print(report.render())
    print()
    print(critpath.attribution_report(cluster.machine.telemetry, "serve.request"))
    if monitor.trips:
        print()
        print(monitor.report())


if __name__ == "__main__":
    main()
