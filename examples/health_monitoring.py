#!/usr/bin/env python
"""Health monitoring and postmortem diagnosis of a link outage.

Builds a 2-node SHRIMP machine with the health monitor armed, kills the
forward link mid-transfer with a hand-pinned fault plan, and lets a
reliable VMMC channel retransmit itself to death.  The monitor trips on
the retransmission storm (naming the dead link by cross-referencing the
channel's route against the fault plan), then on the failed delivery; the
postmortem dump shows which process is still parked on which primitive
and what the machine was doing right before it wedged.

The monitor is a pure observer: it never schedules anything, so an armed
run takes exactly the same virtual-time trajectory as an unmonitored one.

Run::

    python examples/health_monitoring.py
"""

from repro import FaultConfig, FaultPlan, Machine, ReliableConfig, VMMCRuntime
from repro.monitor import MonitorConfig
from repro.vmmc import DeliveryFailed

NBYTES = 2048
OUTAGE_AT_US = 1_000.0


def main() -> None:
    machine = Machine(num_nodes=2, seed=1998)
    monitor = machine.enable_monitor(
        MonitorConfig(
            check_interval_us=100.0,   # sampled-scan cadence
            stall_timeout_us=2_000.0,  # flag processes parked this long
            retx_storm_rounds=3,       # rounds within the window => storm
            retx_window_us=5_000.0,
        )
    )

    # An empty fault config samples no random events; the outage window is
    # pinned by hand so a *known* link dies at a known time.
    plan = FaultPlan(FaultConfig(), seed=1998)
    machine.install_fault_plan(plan)
    plan.outages[(0, 1)] = [(OUTAGE_AT_US, float("inf"))]

    vmmc = VMMCRuntime(machine)
    sender = vmmc.endpoint(machine.create_process(0))
    receiver = vmmc.endpoint(machine.create_process(1))

    def receiver_side():
        buffer = yield from receiver.export(NBYTES, name="outage.buf")
        # Expects two messages; the second dies with the link, so this
        # wait is still blocked when the run ends.
        yield from receiver.wait_bytes(buffer, 2 * NBYTES)

    def sender_side():
        imported = yield from sender.import_buffer("outage.buf")
        channel = sender.open_reliable(
            imported, ReliableConfig(timeout_us=200.0, max_retries=4)
        )
        src = sender.alloc(NBYTES)
        sender.poke(src, bytes(range(256)) * (NBYTES // 256))
        yield from channel.send(src, NBYTES)   # lands before the outage
        yield OUTAGE_AT_US + 100.0 - machine.sim.now
        yield from channel.send(src, NBYTES)   # dies on the dead link

    machine.sim.spawn(receiver_side(), "outage.rx")
    machine.sim.spawn(sender_side(), "outage.tx")
    try:
        machine.sim.run()
    except DeliveryFailed as exc:
        print(f"delivery failed at t={machine.sim.now:.1f}us: {exc}\n")

    # What the watchdogs saw, as it happened.
    print(monitor.report())

    # The full wait-for dump: who is stuck on what, which links are down,
    # and the flight recorder's trailing telemetry events.
    postmortem = monitor.postmortem()
    print()
    print(postmortem.render(events=8))

    assert not monitor.healthy
    assert monitor.tripped("retx_storm"), "storm should have tripped"
    assert monitor.tripped("delivery_failed"), "failure should have tripped"
    storm = monitor.tripped("retx_storm")[0]
    assert storm.data["down_links"] == [[0, 1]], "storm must name the dead link"


if __name__ == "__main__":
    main()
