#!/usr/bin/env python
"""Figure 4 (left) in miniature: HLRC vs HLRC-AU vs AURC on radix sort.

Runs the Radix-SVM kernel — the paper's extreme write-write false-sharing
workload — under all three shared-virtual-memory protocols on 8 nodes and
prints the execution-time breakdowns, showing where AURC's advantage comes
from (the eliminated twin/diff "overhead" category).

Run::

    python examples/svm_protocols.py
"""

from repro import MachineParams
from repro.apps import RadixSVM, run_app
from repro.sim import BREAKDOWN_CATEGORIES

NODES = 8
PARAMS = MachineParams().with_overrides(page_size=1024)


def main() -> None:
    print(f"Radix-SVM (4K keys, radix 16) on {NODES} nodes, 1KB pages\n")
    header = f"{'protocol':10s} {'elapsed':>10s}  " + "  ".join(
        f"{c:>13s}" for c in BREAKDOWN_CATEGORIES
    )
    print(header)
    print("-" * len(header))

    baseline = None
    for protocol in ("hlrc", "hlrc-au", "aurc"):
        app = RadixSVM(protocol=protocol, n_keys=4096, radix=16, max_key=4096)
        result = run_app(app, NODES, params=PARAMS)
        if baseline is None:
            baseline = result.elapsed_us
        breakdown = result.breakdown.as_dict()
        cells = "  ".join(
            f"{breakdown[c] / 1000:10.2f} ms" for c in BREAKDOWN_CATEGORIES
        )
        print(
            f"{protocol:10s} {result.elapsed_ms:7.2f} ms  {cells}"
            f"   (x{result.elapsed_us / baseline:.2f} of HLRC)"
        )

    print(
        "\nReading the table: HLRC and HLRC-AU pay for twins and diffs in"
        "\nthe 'overhead' column; AURC's eager write-through propagation"
        "\neliminates it — the paper's headline SVM result."
    )


if __name__ == "__main__":
    main()
