#!/usr/bin/env python
"""The other SHRIMP APIs: fast RPC and BSP.

The paper's section 3 lists seven high-level APIs built on VMMC; beyond
NX, sockets and SVM, this example exercises the remaining two families:

- the specialized **fast RPC** library (paper reference [7]) — a null
  call round-trips in tens of microseconds because arguments travel by
  user-level DMA straight into the server's memory;
- the **BSP** library (reference [3]) — supersteps of one-sided puts with
  zero-extra-cost synchronization, shown on a parallel prefix-sum.

Run::

    python examples/rpc_and_bsp.py
"""

import struct

from repro import Machine, VMMCRuntime
from repro.msg import BSPWorld, RPCClient, RPCServer


def rpc_demo() -> None:
    machine = Machine(num_nodes=2)
    runtime = VMMCRuntime(machine)
    server = RPCServer(runtime)

    def sort_proc(payload: bytes) -> bytes:
        count = len(payload) // 4
        values = sorted(struct.unpack(f"<{count}i", payload))
        return struct.pack(f"<{count}i", *values)

    server.register("sort", sort_proc)
    server.register("echo", lambda payload: payload)
    server_ep = runtime.endpoint(machine.create_process(0))
    machine.sim.spawn(server.serve(server_ep, "svc"), "rpc-server")
    timings = {}

    def client():
        ep = runtime.endpoint(machine.create_process(1))
        rpc = yield from RPCClient.bind(ep, "svc")
        yield from rpc.call("echo", b"warmup")
        t0 = machine.now
        yield from rpc.call("echo", b"x")
        timings["null_call_us"] = machine.now - t0
        reply = yield from rpc.call(
            "sort", struct.pack("<8i", 5, 3, 8, 1, 9, 2, 7, 4)
        )
        timings["sorted"] = struct.unpack("<8i", reply)

    proc = machine.sim.spawn(client(), "client")
    machine.sim.run()
    assert proc.done
    print("RPC on SHRIMP:")
    print(f"  null call round trip : {timings['null_call_us']:.1f} us "
          "(kernel RPC stacks of the era took milliseconds)")
    print(f"  remote sort          : {timings['sorted']}")


def bsp_demo() -> None:
    nprocs = 8
    machine = Machine(num_nodes=nprocs)
    runtime = VMMCRuntime(machine)
    world = BSPWorld(runtime, nprocs)
    results = {}

    def worker(pid):
        bsp = yield from world.join(pid, machine.create_process(pid))
        value = float(pid + 1)
        distance = 1
        while distance < nprocs:
            if pid + distance < nprocs:
                yield from bsp.put(pid + distance, 0, struct.pack("<d", value))
            yield from bsp.sync()
            for _src, _tag, data in bsp.received():
                value += struct.unpack("<d", data)[0]
            distance *= 2
        results[pid] = value

    procs = [machine.sim.spawn(worker(p), f"bsp{p}") for p in range(nprocs)]
    machine.sim.run()
    assert all(p.done for p in procs)
    print("\nBSP on SHRIMP (log-step parallel prefix sums of 1..8):")
    print("  results :", [results[p] for p in range(nprocs)])
    print("  expected:", [float(sum(range(1, p + 2))) for p in range(nprocs)])
    print(f"  supersteps: {int(machine.stats.counter_value('bsp.supersteps') / nprocs)}"
          f" per process, {int(machine.stats.counter_value('bsp.puts'))} puts,"
          f" {machine.now:.0f} us total")


if __name__ == "__main__":
    rpc_demo()
    bsp_demo()
