#!/usr/bin/env python
"""Large parametric meshes and sharded simulation, end to end.

This walks the scale regime from the library API:

1. **parametric machines** — a 64-node SHRIMP machine on a non-square
   16x4 mesh, routed corner to corner through the same wormhole
   backplane the 16-node studies use;
2. **the shard model** — a 256-node mesh under open-loop transpose
   traffic, run single-process;
3. **the determinism contract** — the same spec sharded across 4 worker
   processes in conservative-lookahead epochs, byte-identical to the
   serial run (same deliveries, same floats, same sha256);
4. **scaling measurements** — events/s across worker counts (wall-clock,
   host-dependent: expect speedup only on multi-core hosts).

The CLI equivalents are shown next to each step.  Run::

    python examples/large_mesh.py
"""

from repro.node import Machine
from repro.shard import plan_partitions, run_serial, run_sharded, spec_for_nodes
from repro.vmmc import VMMCRuntime


def parametric_machine() -> None:
    # CLI: none needed — any entry point taking nodes accepts 64 too.
    machine = Machine(width=16, height=4)
    print(
        f"machine: {machine.num_nodes} nodes on a "
        f"{machine.params.mesh_width}x{machine.params.mesh_height} mesh"
    )
    vmmc = VMMCRuntime(machine)
    receiver = vmmc.endpoint(machine.create_process(63))

    def rx():
        buffer = yield from receiver.export(4096, name="corner")
        yield from receiver.wait_bytes(buffer, 4096)
        print(f"  corner-to-corner page landed at t={machine.now:.2f}us")

    def tx():
        endpoint = vmmc.endpoint(machine.create_process(0))
        imported = yield from endpoint.import_buffer("corner")
        src = endpoint.alloc(4096)
        yield from endpoint.send(imported, src, 4096, sync_delivered=True)

    machine.sim.spawn(rx(), "rx")
    machine.sim.spawn(tx(), "tx")
    machine.sim.run()


def shard_serial():
    # CLI: python -m repro.shard run --nodes 256 --workload transpose
    spec = spec_for_nodes(256, workload="transpose", duration_us=100.0)
    print(f"\nspec: {spec.describe()}")
    print(f"partitioning at 4 workers: {plan_partitions(spec, 4).describe()}")
    result = run_serial(spec)
    print(f"serial : {result.summary()}")
    return spec, result


def shard_parallel(spec, serial) -> None:
    # CLI: python -m repro.shard verify --nodes 256 --workers 4
    sharded = run_sharded(spec, 4)
    print(f"sharded: {sharded.summary()}")
    assert sharded.telemetry_bytes() == serial.telemetry_bytes()
    print(
        f"byte-identical across 1 and {sharded.workers} workers: "
        f"sha256 {serial.telemetry_digest()}"
    )


def scaling_sweep() -> None:
    # CLI: python -m repro.shard scaling --nodes 64 --workers 1,2,4
    #      python -m repro.bench perf --bench scaling_256_w1 ...
    spec = spec_for_nodes(
        64, duration_us=60.0, record_deliveries=False
    )
    print(f"\nscaling {spec.width}x{spec.height} (wall-clock, host-dependent):")
    base = None
    for workers in (1, 2, 4):
        result = run_sharded(spec, workers) if workers > 1 else run_serial(spec)
        if base is None:
            base = result.events_per_sec
        print(
            f"  workers={workers}: {result.events_per_sec:>10,.0f} ev/s "
            f"({result.events_per_sec / base:.2f}x, {result.epochs} epochs)"
        )


def main() -> None:
    parametric_machine()
    spec, serial = shard_serial()
    shard_parallel(spec, serial)
    scaling_sweep()


if __name__ == "__main__":
    main()
