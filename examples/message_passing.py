#!/usr/bin/env python
"""NX message passing on SHRIMP: a parallel grid solver.

Runs the Ocean relaxation kernel through the NX-compatible library
(csend/crecv/gsync/allreduce on VMMC), comparing the deliberate-update and
automatic-update bulk transports and validating against the sequential
solver — then shows the speedup curve.

Run::

    python examples/message_passing.py
"""

from repro.apps import OceanNX, run_app


def main() -> None:
    print("Ocean-NX, 34x34 grid, 6 sweeps\n")

    print("transport comparison on 8 nodes:")
    for mode in ("du", "au"):
        result = run_app(OceanNX(mode=mode, n=34, sweeps=6), 8)
        label = {"du": "deliberate update", "au": "automatic update"}[mode]
        print(
            f"  {label:18s}: {result.elapsed_ms:7.2f} ms "
            f"({int(result.stat('vmmc.messages_received'))} messages, "
            f"{int(result.stat('net.bytes'))} wire bytes)"
        )
    print("  (bulk row exchanges favor DU's DMA, as in paper section 4.2)\n")

    print("speedup curve (DU transport):")
    seq = run_app(OceanNX(n=34, sweeps=6), 1)
    print(f"  {'nodes':>5s} {'elapsed':>12s} {'speedup':>8s}")
    for nodes in (1, 2, 4, 8, 16):
        result = run_app(OceanNX(n=34, sweeps=6), nodes)
        print(
            f"  {nodes:5d} {result.elapsed_ms:9.2f} ms "
            f"{seq.elapsed_us / result.elapsed_us:8.2f}"
        )
    print("\nEvery run validated bit-exactly against the sequential solver.")


if __name__ == "__main__":
    main()
