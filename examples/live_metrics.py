#!/usr/bin/env python
"""Live observability, end to end: metrics, progress, profiling, HTML.

This walks the ``repro.obs`` surface from the library API:

1. **live metrics** — a VMMC stream with the virtual-time sampling
   cadence armed: ring-buffered series, a Prometheus-style scrape and
   the observational zero-overhead contract (the observed run's
   trajectory is byte-identical to an unobserved one);
2. **serve SLO series** — the serving tier through a link outage, with
   the live ok/late/failed counters sampled as time series;
3. **shard progress** — a sharded large-mesh run reporting per-epoch
   ETA and lookahead-stall heartbeats off the identity stream;
4. **host-time profiling** — where the simulator's wall clock goes,
   attributed to components by stack sampling;
5. **HTML evidence** — the series rendered into a self-contained page.

The CLI equivalents are shown next to each step.  Run::

    python examples/live_metrics.py
"""

import os
import tempfile

from repro.node import Machine
from repro.obs import ObsConfig, SamplingProfiler
from repro.obs.html import render_series_html
from repro.vmmc import VMMCRuntime


def live_metrics() -> None:
    # CLI: python -m repro.obs scrape --workload seed
    machine = Machine(num_nodes=4)
    obs = machine.enable_obs(ObsConfig(cadence_us=25.0))
    vmmc = VMMCRuntime(machine)
    receiver = vmmc.endpoint(machine.create_process(0))
    sender = vmmc.endpoint(machine.create_process(1))
    nbytes, ops = 1024, 200
    payload = (bytes(range(256)) * 4)[:nbytes]

    def rx():
        buffer = yield from receiver.export(nbytes, name="live.buf")
        yield from receiver.wait_bytes(buffer, nbytes * ops)

    def tx():
        imported = yield from sender.import_buffer("live.buf")
        src = sender.alloc(nbytes)
        sender.poke(src, payload)
        for _ in range(ops):
            yield from sender.send(imported, src, nbytes, sync_delivered=True)

    machine.sim.spawn(rx(), "live.rx")
    machine.sim.spawn(tx(), "live.tx")
    machine.sim.run()
    obs.sample_now()
    depth = obs.series["sim.heap_depth"]
    print(
        f"metrics: {obs.samples_taken} samples across {len(obs.series)} "
        f"series over {machine.now:.0f}us of virtual time"
    )
    print(
        f"  sim.heap_depth peaked at "
        f"{max(v for _t, v in depth.points):.0f} "
        f"(retained {len(depth.points)}/{depth.offered} offers, "
        f"stride {depth.stride})"
    )
    scrape = obs.scrape()
    sample = [l for l in scrape.splitlines() if l.startswith("repro_net")][:3]
    print("  scrape excerpt:", *sample, sep="\n    ")
    return obs


def serve_slo_series():
    # CLI: python -m repro.obs scrape --workload serve-chaos
    from repro.serve import ServeCluster, ServeConfig, make_chaos

    config = ServeConfig(
        num_shards=2,
        num_aggregates=2,
        offered_rps=25_000.0,
        duration_us=4_000.0,
        retx_timeout_us=200.0,
        retx_max_retries=2,
    )
    machine = Machine(num_nodes=config.num_nodes)
    obs = machine.enable_obs(ObsConfig(cadence_us=100.0))
    cluster = ServeCluster(config, machine=machine)
    cluster.setup()
    chaos = make_chaos("link-outage", at_us=1_000.0, duration_us=None)
    chaos.apply(cluster)
    report = cluster.run()
    failed = obs.series["serve.slo.failed"].points
    first_failure = next((t for t, v in failed if v > 0), None)
    print(f"\nserve: {chaos.describe(cluster)}")
    print(
        f"  ok={report.overall.ok} late={report.overall.late} "
        f"failed={report.overall.failed}; first failure sampled at "
        f"t={first_failure:.0f}us" if first_failure is not None else "  clean"
    )
    return obs


def shard_progress() -> None:
    # CLI: python -m repro.shard run --nodes 256 --workers 4 --progress
    from repro.shard import run_sharded, spec_for_nodes

    spec = spec_for_nodes(256, duration_us=60.0, record_deliveries=False)
    epochs = []
    result = run_sharded(spec, 4, progress=epochs.append)
    last = epochs[-1]
    print(
        f"\nshard: {result.events} events over {result.epochs} epochs; "
        f"final heartbeat: {last.line()}"
    )
    worst = max(last.stall_fractions())
    print(
        f"  worst lookahead stall {100 * worst:.0f}% — the number that "
        f"says why scaling flattens on few-core hosts"
    )


def host_profile() -> None:
    # CLI: python -m repro.obs profile --bench du_ping
    from repro.bench.perf import PERF_REGISTRY

    profiler = SamplingProfiler(interval_s=0.001)
    with profiler:
        PERF_REGISTRY["du_ping"].runner(1000)
    shares = ", ".join(
        f"{component} {100 * share:.0f}%"
        for component, share in list(profiler.attribution().items())[:4]
    )
    print(f"\nprofile: {profiler.total_samples} samples -> {shares}")


def html_evidence(obs) -> None:
    # CLI: python -m repro.obs html obs-series.json --out report.html
    page = render_series_html(obs.series_doc(), "live_metrics example")
    out = os.path.join(tempfile.gettempdir(), "live_metrics.html")
    with open(out, "w", encoding="utf-8") as fh:
        fh.write(page)
    print(
        f"\nhtml: {len(page)} bytes, {page.count('<svg')} inline-SVG "
        f"charts -> {out}"
    )


def main() -> None:
    live_metrics()
    obs = serve_slo_series()
    shard_progress()
    host_profile()
    html_evidence(obs)


if __name__ == "__main__":
    main()
