#!/usr/bin/env python
"""Replay the paper's what-if method on one application.

The paper evaluates SHRIMP's design choices by reprogramming the NIC
firmware and rerunning real applications.  This example does exactly that
for the DFS cluster file system: it sweeps every named configuration —
kernel-mediated sends, per-message interrupts, no combining, tiny FIFO,
deliberate-update queueing — and reports the slowdown each alternative
design would have cost.

Run::

    python examples/design_study.py
"""

from repro.apps import DFSSockets, run_app
from repro.study import CONFIGS

NODES = 8
SWEEP = [
    "baseline",
    "kernel_send",
    "interrupt_all",
    "no_combining",
    "fifo_1k",
    "du_queue_2",
]


def make_app(mode: str = "du") -> DFSSockets:
    return DFSSockets(
        mode=mode, n_files=4, blocks_per_file=32, block_size=1024,
        reads_per_client=48, cache_blocks=8,
    )


def main() -> None:
    print(f"DFS-sockets under every what-if configuration ({NODES} nodes)\n")
    baseline = run_app(make_app(), NODES, nic_config=CONFIGS["baseline"].nic_config())
    print(f"{'configuration':15s} {'elapsed':>12s} {'vs baseline':>12s}   what changed")
    print("-" * 95)
    for name in SWEEP:
        experiment = CONFIGS[name]
        # The combining knob only matters on the AU transport.
        mode = "au" if name == "no_combining" else "du"
        reference = baseline
        if mode == "au":
            reference = run_app(make_app("au"), NODES,
                                nic_config=CONFIGS["baseline"].nic_config())
        result = run_app(make_app(mode), NODES, nic_config=experiment.nic_config())
        delta = (result.elapsed_us / reference.elapsed_us - 1.0) * 100.0
        print(
            f"{name:15s} {result.elapsed_ms:9.2f} ms {delta:+10.1f}%   "
            f"{experiment.description}"
        )
    print(
        "\nThe pattern matches the paper: user-level DMA and interrupt"
        "\navoidance matter a lot; FIFO size and DU queueing barely at all."
    )


if __name__ == "__main__":
    main()
