#!/usr/bin/env python
"""Finding the bottleneck of an operation with critical-path attribution.

Runs the same one-page deliberate update twice — once on an idle machine,
once with three senders fanning into the same receiving node — and uses
``repro.telemetry.critpath`` to show not just that the contended send is
slower, but *where the extra microseconds went*: the attribution vector
decomposes each operation's latency into CPU initiation, NIC DMA, link
serialization, RX-FIFO residency, notification overhead and contention
stall, summing exactly to the operation's duration (DESIGN.md section 10).

Run::

    python examples/bottleneck_analysis.py

``python -m repro.telemetry du-ping --attr`` is the CLI shortcut, and
``python -m repro.bench run`` records the same vectors for every curated
benchmark so regressions can be localised, not just detected.
"""

from repro import Machine, VMMCRuntime
from repro.faults import FaultConfig
from repro.telemetry import critpath
from repro.vmmc import ReliableConfig

NBYTES = 4096
OPS = 4


def fan_in(senders: int) -> Machine:
    """``senders`` nodes each stream OPS pages into node 0."""
    machine = Machine(num_nodes=senders + 1, seed=1998, telemetry=True)
    vmmc = VMMCRuntime(machine)
    receiver = vmmc.endpoint(machine.create_process(0))
    payload = bytes(range(256)) * (NBYTES // 256)

    def receiver_side():
        buffers = []
        for s in range(senders):
            buffer = yield from receiver.export(NBYTES, name=f"sink.{s}")
            buffers.append(buffer)
        for buffer in buffers:
            yield from receiver.wait_bytes(buffer, NBYTES * OPS)

    def sender_side(s):
        endpoint = vmmc.endpoint(machine.create_process(s + 1))
        imported = yield from endpoint.import_buffer(f"sink.{s}")
        src = endpoint.alloc(NBYTES)
        endpoint.poke(src, payload)
        for _ in range(OPS):
            yield from endpoint.send(imported, src, NBYTES, sync_delivered=True)

    machine.sim.spawn(receiver_side(), "rx")
    for s in range(senders):
        machine.sim.spawn(sender_side(s), f"tx{s}")
    machine.sim.run()
    return machine


def lossy_reliable() -> Machine:
    """One page over a reliable channel on a fabric dropping 30% of packets."""
    machine = Machine(
        num_nodes=2,
        seed=1998,
        telemetry=True,
        fault_config=FaultConfig(drop_rate=0.3),
    )
    vmmc = VMMCRuntime(machine)
    sender = vmmc.endpoint(machine.create_process(0))
    receiver = vmmc.endpoint(machine.create_process(1))

    def receiver_side():
        buffer = yield from receiver.export(NBYTES, name="lossy")
        yield from receiver.wait_bytes(buffer, NBYTES)

    def sender_side():
        imported = yield from sender.import_buffer("lossy")
        src = sender.alloc(NBYTES)
        sender.poke(src, bytes(range(256)) * (NBYTES // 256))
        channel = sender.open_reliable(
            imported, ReliableConfig(timeout_us=300.0)
        )
        yield from channel.send(src, NBYTES)

    machine.sim.spawn(receiver_side(), "rx")
    machine.sim.spawn(sender_side(), "tx")
    machine.sim.run()
    return machine


def main() -> None:
    idle = fan_in(senders=1)
    busy = fan_in(senders=3)

    print("One sender, idle fabric:\n")
    print(critpath.attribution_report(idle.telemetry, "vmmc.send", top=1))

    print("\n\nThree senders fanning into one node:\n")
    print(critpath.attribution_report(busy.telemetry, "vmmc.send", top=1))

    # The same numbers, programmatically: compare mean per-op components.
    idle_agg = critpath.aggregate(idle.telemetry, "vmmc.send", top=0)
    busy_agg = critpath.aggregate(busy.telemetry, "vmmc.send", top=0)
    print("\n\nWhere the extra microseconds went (mean us/op, busy - idle):")
    for component in critpath.COMPONENTS:
        delta = busy_agg.mean(component) - idle_agg.mean(component)
        if abs(delta) > 1e-9:
            print(f"  {component:8s} {delta:+9.3f}")
    print(
        "\nThe senders' own CPU and DMA costs are unchanged — the extra "
        "time is all 'link':\nwormhole backpressure while three flows "
        "serialize on the receiver's incoming link."
    )

    print("\n\nSame page over a reliable channel on a 30%-drop fabric:\n")
    print(critpath.attribution_report(lossy_reliable().telemetry, "vmmc.send"))
    print(
        "\nHere the dead time between a drop and its go-back-N retransmit "
        "is a gap between\nthe send's children, so it surfaces as 'stall' "
        "— a different bottleneck, visibly\na different component."
    )


if __name__ == "__main__":
    main()
