#!/usr/bin/env python
"""The experiment fleet, end to end: declare, run, cache, explore.

This walks the whole empirical-study loop from the library API:

1. **declare** a matrix — host-dissemination (``nx``) vs NIC-resident
   (``tree-nic``) barriers at 4 and 8 nodes — and expand it into frozen,
   content-fingerprinted :class:`ExperimentSpec` cells;
2. **run** it twice against a run store: the first pass executes every
   spec on a 2-process pool, the second is 100% cache hits because each
   ``runs/<fingerprint>/record.json`` is a pure function of (spec,
   code) — no wall-clock fields, byte-identical on re-run;
3. **explore** the accumulated records without re-simulating anything:
   the store listing, a paired-bootstrap comparison, the
   attribution-shift table (where did the cpu time go when the barrier
   moved into the NIC?), a median-vs-nodes trend, and a drill-down to
   the Chrome-trace sidecar.

The CLI equivalents are shown next to each step.  Run::

    python examples/fleet_explorer.py
"""

import tempfile

from repro.bench.compare import render_comparison
from repro.explore import attr_diff, compare_refs, drill, list_table, trend_table
from repro.fleet import Catalog, RunStore, expand_matrix, run_specs

MATRIX = {
    "name": "example",
    "matrix": {
        "workload": ["coll"],
        "params": [{"mode": "nx", "ops": 6}, {"mode": "tree-nic", "ops": 6}],
        "nodes": [4, 8],
    },
}


def main():
    # 1. Declare.  (CLI: a JSON file passed to `repro.fleet run --matrix`.)
    catalog = Catalog(name="example", specs=expand_matrix(MATRIX))
    print(f"catalog {catalog.name!r}: {len(catalog)} specs")
    for spec in catalog:
        print(f"  {spec.fingerprint}  {spec.describe()}")

    with tempfile.TemporaryDirectory() as root:
        store = RunStore(root)

        # 2. Run, twice.  (CLI: `python -m repro.fleet run --matrix ...
        # --workers 2`, then the same command again.)
        for attempt in (1, 2):
            outcomes = run_specs(catalog.specs, store, workers=2)
            hits = sum(1 for o in outcomes if o.cached)
            print(
                f"\npass {attempt}: "
                f"cache hits {hits}/{len(outcomes)}, "
                f"executed {sum(1 for o in outcomes if o.status == 'ran')}"
            )

        # 3. Explore.  (CLI: `python -m repro.explore ...`.)
        print("\n" + list_table(store))

        base = "workload=coll,mode=nx,nodes=8"
        new = "workload=coll,mode=tree-nic,nodes=8"

        # compare: the same paired-bootstrap gate `repro.bench` uses.
        print("\n" + render_comparison(
            compare_refs(store, base, new, n_boot=500)
        ))

        # attr-diff: the empirical-study verb.  The headline is the
        # in-network-collectives story — cpu share collapses when the
        # barrier stops paying the per-message software stack.
        print("\n" + attr_diff(store, base, new))

        # trend: one series per leftover knob combination.
        print("\n" + trend_table(store, "coll", x="nodes"))

        # drill: from a record to its on-disk evidence.
        print("\n" + drill(store, new))


if __name__ == "__main__":
    main()
