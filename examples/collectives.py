#!/usr/bin/env python
"""Host-side vs NIC-resident collectives, measured and attributed.

Runs the same 16-rank program three ways:

* **nx** — the paper's software stack: ``gsync`` is a host-side
  dissemination barrier, ceil(log2 P) rounds of point-to-point messages,
  every round paying the full per-message software cost on the CPU;
* **tree-host** — the spanning-tree collectives of ``repro.coll`` with
  the *host* backend: same tree algorithm, but every engine step is
  charged to the CPU;
* **tree-nic** — the NIC-resident backend: collective packets are
  consumed inside the NIC firmware, and the host CPU touches exactly one
  doorbell and one status poll per operation.

For each mode the program times a train of barriers and allreduces, then
prints critical-path attribution of the barrier spans — the design
story is not just "the NIC barrier is faster" but *where the time
went*: the cpu share collapses and is replaced by in-network ``sync``.

Run::

    python examples/collectives.py
"""

from repro import CollConfig, Machine, VMMCRuntime
from repro.msg import NXWorld
from repro.telemetry import critpath

NPROCS = 16
OPS = 8


def run_mode(label, coll):
    machine = Machine(num_nodes=NPROCS, telemetry=True)
    runtime = VMMCRuntime(machine)
    world = NXWorld(runtime, NPROCS, coll=coll)
    marks = {}

    def worker(rank):
        nx = yield from world.join(rank, machine.create_process(rank))
        yield from nx.gsync()  # absorb join skew
        if rank == 0:
            marks["start"] = machine.now
        for _ in range(OPS):
            yield from nx.gsync()
        if rank == 0:
            marks["mid"] = machine.now
        for i in range(OPS):
            yield from nx.allreduce(
                float(rank + i), lambda a, b: a + b, name="sum"
            )
        if rank == 0:
            marks["end"] = machine.now

    for rank in range(NPROCS):
        machine.sim.spawn(worker(rank), f"{label}.r{rank}")
    machine.sim.run()

    barrier_us = (marks["mid"] - marks["start"]) / OPS
    allreduce_us = (marks["end"] - marks["mid"]) / OPS
    span = "coll.barrier" if coll is not None else "nx.gsync"
    agg = critpath.aggregate(machine.telemetry, span, top=0)
    print(f"\n=== {label} ===")
    print(f"  barrier   : {barrier_us:8.2f} us/op")
    print(f"  allreduce : {allreduce_us:8.2f} us/op")
    shares = ", ".join(
        f"{component} {agg.fraction(component) * 100.0:.1f}%"
        for component in critpath.COMPONENTS
        if agg.fraction(component) >= 0.005
    )
    print(f"  barrier critical path: {shares}")
    print(
        f"  collective packets: "
        f"{machine.stats.counter_value('coll.packets')}"
    )
    return barrier_us


def main() -> None:
    print(f"{NPROCS} ranks, {OPS} barriers + {OPS} allreduces per mode")
    nx = run_mode("nx (host dissemination)", None)
    run_mode("tree-host", CollConfig(backend="host"))
    nic = run_mode("tree-nic", CollConfig(backend="nic"))
    print(
        f"\nNIC-side barrier speedup over host dissemination: "
        f"{nx / nic:.2f}x"
    )


if __name__ == "__main__":
    main()
