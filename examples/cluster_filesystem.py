#!/usr/bin/env python
"""The DFS cooperative-cache cluster file system, interactively.

Builds the sockets-based distributed file system from the paper's workload
(section 3): servers on every node, client threads on half of them, file
blocks striped round-robin across the cluster, local caches deliberately
smaller than the working set so reads become node-to-node block transfers.
Prints per-client cache behavior and the cluster-wide traffic summary.

Run::

    python examples/cluster_filesystem.py
"""

from repro import Machine, VMMCRuntime
from repro.apps import DFSSockets
from repro.apps.base import RunContext


def main() -> None:
    nodes = 8
    app = DFSSockets(
        n_files=6, blocks_per_file=32, block_size=2048,
        reads_per_client=64, cache_blocks=10,
    )
    machine = Machine(num_nodes=nodes)
    vmmc = VMMCRuntime(machine)
    ctx = RunContext(machine, vmmc, nodes)
    workers = app.workers(ctx)
    procs = [machine.sim.spawn(g, f"dfs{i}") for i, g in enumerate(workers)]
    machine.sim.run()
    assert all(p.done for p in procs)
    app.validate()

    clients = max(1, nodes // 2)
    stats = machine.stats
    blocks = int(stats.counter_value("sockets.block_sends"))
    print(f"DFS on {nodes} nodes ({clients} clients, {nodes} servers)")
    print(f"  files               : {app.n_files} x {app.blocks_per_file} "
          f"blocks x {app.block_size} B")
    print(f"  reads issued        : {clients * app.reads_per_client} "
          f"(all verified against expected block contents)")
    print(f"  remote block serves : {blocks}")
    print(f"  cache hit rate      : "
          f"{1 - blocks / (clients * app.reads_per_client):.0%} "
          f"(small caches -> mostly misses, as the workload intends)")
    print(f"  wire traffic        : {int(stats.counter_value('net.bytes'))} "
          f"bytes in {int(stats.counter_value('net.packets'))} packets")
    print(f"  wall time (virtual) : {machine.now / 1000:.2f} ms")
    print(f"  notifications       : "
          f"{int(stats.counter_value('vmmc.notifications'))} "
          f"(sockets applications poll; the paper's Table 3 row is 0)")


if __name__ == "__main__":
    main()
