#!/usr/bin/env python
"""Quickstart: the VMMC communication model in five minutes.

Builds a 4-node SHRIMP machine and demonstrates the primitives the whole
system is built from:

1. export / import of receive buffers;
2. a deliberate-update (user-level DMA) transfer;
3. an automatic-update binding, where plain stores propagate to remote
   memory as a side-effect;
4. a notification, delivered to a user-level handler on arrival.

Run::

    python examples/quickstart.py
"""

from repro import Machine, VMMCRuntime


def main() -> None:
    machine = Machine(num_nodes=4)
    vmmc = VMMCRuntime(machine)
    sim = machine.sim

    sender = vmmc.endpoint(machine.create_process(0))
    receiver = vmmc.endpoint(machine.create_process(1))
    log = []

    def receiver_side():
        # 1. Export a receive buffer under a well-known name; enable
        #    notifications so senders *may* interrupt us.
        buffer = yield from receiver.export(
            8192, name="demo.buffer", enable_notifications=True
        )
        receiver.set_notification_handler(
            lambda buf, packet: log.append(
                f"[{sim.now:8.2f} us] notification: {packet.data_bytes} bytes "
                f"arrived in {buf.name!r}"
            )
        )

        # 2. Poll for the deliberate-update message (no interrupt taken).
        yield from receiver.wait_bytes(buffer, 20)
        data = receiver.read_buffer(buffer, 0, 20)
        log.append(f"[{sim.now:8.2f} us] polled DU data: {data!r}")

        # 3. Poll for the automatic-update data, written into page 1.
        yield from receiver.wait_bytes(buffer, 20 + 11)
        data = receiver.read_buffer(buffer, 4096, 11)
        log.append(f"[{sim.now:8.2f} us] AU data appeared: {data!r}")

        # 4. Wait for the final, notifying message.
        yield from receiver.wait_messages(buffer, 2)

    def sender_side():
        imported = yield from sender.import_buffer("demo.buffer")

        # Deliberate update: an explicit user-level DMA transfer.
        src = sender.alloc(4096)
        sender.poke(src, b"deliberate update 1.")
        t0 = sim.now
        yield from sender.send(imported, src, 20)
        log.append(f"[{sim.now:8.2f} us] DU send done "
                   f"(sender-side cost {sim.now - t0:.2f} us)")

        # Automatic update: bind a local page to the buffer's second page;
        # ordinary stores to it now propagate automatically.
        local = sender.alloc(4096)
        yield from sender.bind_au(imported, local, 1, remote_page_index=1)
        yield from sender.au_write(local, b"just stores")
        yield from sender.au_flush()
        log.append(f"[{sim.now:8.2f} us] AU stores issued")

        # A message with the interrupt bit set -> notification at the
        # receiver (both sender and receiver bits must agree).
        sender.poke(src, b"ding")
        yield from sender.send(imported, src, 4, interrupt=True)

    rx = sim.spawn(receiver_side(), "receiver")
    tx = sim.spawn(sender_side(), "sender")
    sim.run()
    assert rx.done and tx.done

    print("Event log (virtual microseconds):")
    for line in log:
        print(" ", line)
    print()
    print(f"Simulated time : {sim.now:.1f} us")
    print(f"Packets on wire: {machine.backplane.packets_delivered}")
    print(f"Notifications  : {machine.stats.counter_value('vmmc.notifications')}")


if __name__ == "__main__":
    main()
