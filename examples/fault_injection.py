#!/usr/bin/env python
"""Fault injection and reliable delivery on a lossy fabric.

Builds a 4-node SHRIMP machine with a deterministic fault plan that drops
2 % of packets and corrupts another 0.5 %, then pushes a 128 KB deliberate
update through a reliable VMMC channel.  The trace output shows each fault
the plan injects and each go-back-N retransmission round the channel runs
to repair it; the transfer still completes byte-exact.

Run::

    python examples/fault_injection.py
"""

from repro import FaultConfig, Machine, ReliableConfig, VMMCRuntime

NBYTES = 128 * 1024


def main() -> None:
    machine = Machine(
        num_nodes=4,
        seed=1998,
        fault_config=FaultConfig(drop_rate=0.02, corrupt_rate=0.005),
    )
    # Trace only the fault injector and the retransmit machinery.
    machine.tracer.enable(categories=["fault.", "vmmc.retx"])

    vmmc = VMMCRuntime(machine)
    sim = machine.sim
    sender = vmmc.endpoint(machine.create_process(0))
    receiver = vmmc.endpoint(machine.create_process(1))
    payload = bytes(range(256)) * (NBYTES // 256)
    out = {}

    def receiver_side():
        buffer = yield from receiver.export(NBYTES, name="lossy.buf")
        yield from receiver.wait_bytes(buffer, NBYTES)
        out["data"] = receiver.read_buffer(buffer, 0, NBYTES)

    def sender_side():
        imported = yield from sender.import_buffer("lossy.buf")
        channel = sender.open_reliable(imported, ReliableConfig(timeout_us=300.0))
        out["channel"] = channel
        src = sender.alloc(NBYTES)
        sender.poke(src, payload)
        yield from channel.send(src, NBYTES)

    rx = sim.spawn(receiver_side(), "receiver")
    tx = sim.spawn(sender_side(), "sender")
    sim.run()
    assert rx.done and tx.done
    assert out["data"] == payload, "reliable delivery must be byte-exact"

    print(f"Transferred {NBYTES} bytes over a lossy fabric "
          f"(2% drops, 0.5% corruption) in {sim.now:.1f} us.\n")
    print("Injected faults and repairs:")
    for event in machine.tracer.events:
        print(" ", event)

    stats = machine.stats
    channel = out["channel"]
    print()
    print(f"Packets dropped     : {stats.counter_value('fault.drops')}")
    print(f"Packets corrupted   : {stats.counter_value('fault.corruptions')}")
    print(f"Retransmit rounds   : {stats.counter_value('vmmc.retx.rounds')}")
    print(f"Packets retransmitted: {channel.retransmissions}")
    print(f"Acks sent           : {stats.counter_value('vmmc.acks_sent')}")
    print(f"Sequence state      : acked {channel.acked} / sent {channel.last_seq}")


if __name__ == "__main__":
    main()
