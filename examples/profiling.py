#!/usr/bin/env python
"""Profiling a run with the telemetry subsystem.

Builds a 2-node machine with telemetry armed, pushes one 8 KB deliberate
update through VMMC, and shows everything the profiler collected: the
causal span tree of the transfer (app -> VMMC -> NIC DMA -> backplane ->
remote NIC -> notification), per-layer latency percentiles, resource
utilization timelines, and a Chrome trace_event JSON you can open at
chrome://tracing or https://ui.perfetto.dev.

Run::

    python examples/profiling.py

The study-suite applications profile the same way: pass a telemetry-enabled
machine to ``run_app`` (see ``python -m repro.telemetry --help`` for the
CLI version of this script).
"""

from repro import Machine, VMMCRuntime
from repro.telemetry import summarize, write_chrome_trace

NBYTES = 8 * 1024


def main() -> None:
    machine = Machine(num_nodes=2, seed=1998, telemetry=True)
    vmmc = VMMCRuntime(machine)
    sender = vmmc.endpoint(machine.create_process(0))
    receiver = vmmc.endpoint(machine.create_process(1))
    payload = bytes(range(256)) * (NBYTES // 256)

    def receiver_side():
        buffer = yield from receiver.export(
            NBYTES, name="profiled.buf", enable_notifications=True
        )
        yield from receiver.wait_bytes(buffer, NBYTES)

    def sender_side():
        imported = yield from sender.import_buffer("profiled.buf")
        src = sender.alloc(NBYTES)
        sender.poke(src, payload)
        yield from sender.send(
            imported, src, NBYTES, interrupt=True, sync_delivered=True
        )

    machine.sim.spawn(receiver_side(), "rx")
    machine.sim.spawn(sender_side(), "tx")
    machine.sim.run()

    tel = machine.telemetry
    send = tel.spans("vmmc.send")[0]
    print("Causal span tree of the transfer:\n")
    print(tel.span_tree(send.span_id))
    print()
    print(summarize(tel, label=f"du transfer, {NBYTES} B"))

    path = write_chrome_trace(tel, "profiling.trace.json")
    print(f"\nwrote {path} — open it at chrome://tracing or ui.perfetto.dev")


if __name__ == "__main__":
    main()
